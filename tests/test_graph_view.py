"""Unit tests for the zero-copy graph-view subsystem (repro/graph/view.py).

The equivalence of the view path against the materialised path — same
condensation losses, same gradients — is pinned in
``tests/test_hotpath_equivalence.py``; this file covers the view types
themselves (stacked feature access, lazy propagated products, cache keying
and sharding) and the warm-start surrogate machinery they enable.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from helpers import build_small_graph
from repro.attack.bgc import BGC, BGCConfig
from repro.attack.trigger import TriggerConfig
from repro.condensation import CondensationConfig
from repro.condensation.gcond import GCondX
from repro.exceptions import GraphValidationError
from repro.graph.cache import PropagationCache
from repro.graph.propagation import sgc_precompute
from repro.graph.view import (
    GraphView,
    PropagatedView,
    StackedFeatures,
    poison_graph_view,
)
from repro.models.gcn import GCN
from repro.models.trainer import Trainer, TrainingConfig
from repro.utils.seed import new_rng


def _trigger_blocks(graph, rng, num_targets=3, trigger_size=2):
    targets = np.sort(rng.choice(graph.num_nodes, size=num_targets, replace=False))
    features = rng.normal(size=(num_targets, trigger_size, graph.num_features))
    adjacency = (rng.random((num_targets, trigger_size, trigger_size)) < 0.5).astype(
        np.float64
    )
    return targets, features, adjacency


# --------------------------------------------------------------------- #
# StackedFeatures
# --------------------------------------------------------------------- #
class TestStackedFeatures:
    def test_shape_and_gather_cross_boundary(self, rng):
        base = rng.normal(size=(10, 4))
        overlay = rng.normal(size=(3, 4))
        stacked = StackedFeatures(base, overlay)
        assert stacked.shape == (13, 4)
        assert stacked.ndim == 2
        assert len(stacked) == 13
        rows = np.array([0, 9, 10, 12, 5])
        expected = np.vstack([base, overlay])[rows]
        np.testing.assert_array_equal(stacked.gather(rows), expected)
        np.testing.assert_array_equal(stacked[rows], expected)
        np.testing.assert_array_equal(stacked[11], overlay[1])

    def test_materialize_matches_vstack_and_is_cached(self, rng):
        base = rng.normal(size=(5, 3))
        overlay = rng.normal(size=(2, 3))
        stacked = StackedFeatures(base, overlay)
        first = stacked.materialize()
        np.testing.assert_array_equal(first, np.vstack([base, overlay]))
        assert stacked.materialize() is first
        np.testing.assert_array_equal(np.asarray(stacked), first)

    def test_gather_never_materializes(self, rng):
        stacked = StackedFeatures(rng.normal(size=(8, 2)), rng.normal(size=(2, 2)))
        stacked.gather(np.array([0, 9]))
        assert stacked._materialized is None

    def test_dimension_mismatch_rejected(self, rng):
        with pytest.raises(GraphValidationError):
            StackedFeatures(rng.normal(size=(4, 3)), rng.normal(size=(2, 5)))

    def test_boolean_mask_selects_rows_not_indices(self, rng):
        """Regression: a boolean mask must behave like numpy fancy indexing,
        not be cast to 0/1 integer indices."""
        base = rng.normal(size=(6, 2))
        overlay = rng.normal(size=(2, 2))
        stacked = StackedFeatures(base, overlay)
        mask = np.zeros(8, dtype=bool)
        mask[[1, 6]] = True
        expected = np.vstack([base, overlay])[mask]
        np.testing.assert_array_equal(stacked[mask], expected)
        np.testing.assert_array_equal(stacked.gather(mask), expected)

    def test_negative_indices_wrap_like_ndarray(self, rng):
        """Regression: -1 must mean the last view row, not base[-1]."""
        base = rng.normal(size=(6, 2))
        overlay = rng.normal(size=(2, 2))
        stacked = StackedFeatures(base, overlay)
        full = np.vstack([base, overlay])
        np.testing.assert_array_equal(stacked[-1], full[-1])
        np.testing.assert_array_equal(
            stacked[np.array([-3, -8, 0])], full[np.array([-3, -8, 0])]
        )
        with pytest.raises(IndexError):
            stacked.gather(np.array([8]))
        with pytest.raises(IndexError):
            stacked.gather(np.array([-9]))

    def test_tuple_indices_and_mask_length_follow_ndarray(self, rng):
        """2-D indexing must behave like the ndarray it substitutes for, and
        a wrong-length boolean mask must raise instead of selecting rows."""
        base = rng.normal(size=(3, 4))
        overlay = rng.normal(size=(2, 4))
        stacked = StackedFeatures(base, overlay)
        full = np.vstack([base, overlay])
        assert stacked[0, 1] == full[0, 1]
        np.testing.assert_array_equal(
            stacked[np.array([1, 4]), :], full[np.array([1, 4]), :]
        )
        with pytest.raises(IndexError):
            stacked[np.ones(3, dtype=bool)]  # mask of the wrong length


# --------------------------------------------------------------------- #
# PropagatedView
# --------------------------------------------------------------------- #
class TestPropagatedView:
    def test_gather_resolves_dirty_and_clean_rows(self, rng):
        base_product = rng.normal(size=(6, 3))
        dirty_rows = np.array([1, 4, 6, 7])  # rows 6, 7 are appended
        dirty_values = rng.normal(size=(4, 3))
        view = PropagatedView(base_product, dirty_rows, dirty_values, num_rows=8)
        assert view.shape == (8, 3)
        np.testing.assert_array_equal(view[np.array([0, 5])], base_product[[0, 5]])
        np.testing.assert_array_equal(view[np.array([1, 7])], dirty_values[[0, 3]])
        mixed = view.gather(np.array([4, 0, 6]))
        np.testing.assert_array_equal(
            mixed, np.vstack([dirty_values[1], base_product[0], dirty_values[2]])
        )

    def test_materialize_scatter(self, rng):
        base_product = rng.normal(size=(4, 2))
        view = PropagatedView(
            base_product, np.array([2, 4]), rng.normal(size=(2, 2)), num_rows=5
        )
        full = view.materialize()
        np.testing.assert_array_equal(full[[0, 1, 3]], base_product[[0, 1, 3]])
        np.testing.assert_array_equal(full[2], view.dirty_values[0])
        np.testing.assert_array_equal(full[4], view.dirty_values[1])
        assert view.materialize() is full

    def test_row_count_validation(self, rng):
        with pytest.raises(GraphValidationError):
            PropagatedView(
                rng.normal(size=(6, 2)), np.array([0]), rng.normal(size=(1, 2)), 5
            )

    def test_boolean_mask_selects_rows_not_indices(self, rng):
        base_product = rng.normal(size=(4, 2))
        view = PropagatedView(
            base_product, np.array([1, 4]), rng.normal(size=(2, 2)), num_rows=5
        )
        mask = np.array([True, False, False, True, True])
        np.testing.assert_array_equal(view[mask], view.materialize()[mask])

    def test_negative_indices_wrap_like_ndarray(self, rng):
        base_product = rng.normal(size=(4, 2))
        view = PropagatedView(
            base_product, np.array([1, 4]), rng.normal(size=(2, 2)), num_rows=5
        )
        full = view.materialize()
        np.testing.assert_array_equal(view[-1], full[-1])
        np.testing.assert_array_equal(
            view[np.array([-5, -2])], full[np.array([-5, -2])]
        )
        with pytest.raises(IndexError):
            view.gather(np.array([5]))


# --------------------------------------------------------------------- #
# GraphView + poison_graph_view
# --------------------------------------------------------------------- #
class TestGraphView:
    def test_poison_view_matches_materialised_content(self, small_graph, rng):
        targets, features, adjacency = _trigger_blocks(small_graph, rng)
        view = poison_graph_view(small_graph, targets, features, adjacency)
        materialised = view.materialize()
        assert view.num_nodes == materialised.num_nodes
        assert (view.adjacency != materialised.adjacency).nnz == 0
        np.testing.assert_array_equal(
            view.features.gather(np.arange(view.num_nodes)), materialised.features
        )
        np.testing.assert_array_equal(view.labels, materialised.labels)
        np.testing.assert_array_equal(
            view.derivation.changed_nodes, np.unique(targets)
        )
        assert view.derivation.base is small_graph
        assert materialised.derivation.base is small_graph

    def test_default_labels_and_split(self, small_graph, rng):
        targets, features, adjacency = _trigger_blocks(small_graph, rng)
        view = poison_graph_view(small_graph, targets, features, adjacency)
        num_new = targets.size * features.shape[1]
        np.testing.assert_array_equal(view.labels[: small_graph.num_nodes], small_graph.labels)
        assert (view.labels[small_graph.num_nodes :] == 0).all()
        assert view.labels.size == small_graph.num_nodes + num_new
        assert view.split is small_graph.split
        assert view.trigger_node_index.shape == (targets.size, features.shape[1])

    def test_versions_and_cache_keys_are_distinct(self, small_graph, rng):
        targets, features, adjacency = _trigger_blocks(small_graph, rng)
        first = poison_graph_view(small_graph, targets, features, adjacency)
        second = poison_graph_view(small_graph, targets, features, adjacency)
        assert first.version != second.version
        assert first.cache_key != second.cache_key
        assert first.cache_key[0] == small_graph.version

    def test_feature_dim_mismatch_rejected(self, small_graph, rng):
        targets = np.array([0, 1])
        bad_features = rng.normal(size=(2, 2, small_graph.num_features + 1))
        adjacency = np.ones((2, 2, 2))
        with pytest.raises(GraphValidationError):
            poison_graph_view(small_graph, targets, bad_features, adjacency)

    def test_views_cannot_stack_on_views(self, small_graph, rng):
        targets, features, adjacency = _trigger_blocks(small_graph, rng)
        view = poison_graph_view(small_graph, targets, features, adjacency)
        with pytest.raises(GraphValidationError):
            GraphView(
                base=view,
                adjacency=view.adjacency,
                overlay_features=np.zeros((0, view.num_features)),
                labels=view.labels,
            )


# --------------------------------------------------------------------- #
# Cache integration: difference-form propagation, keys, shards
# --------------------------------------------------------------------- #
class TestCacheViewIntegration:
    def test_propagated_view_is_exact(self, small_graph, rng):
        cache = PropagationCache()
        targets, features, adjacency = _trigger_blocks(small_graph, rng)
        view = poison_graph_view(small_graph, targets, features, adjacency)
        result = cache.propagated_view(view, 2)
        assert isinstance(result, PropagatedView)
        reference = sgc_precompute(
            view.adjacency, view.features.materialize(), 2
        )
        np.testing.assert_allclose(result.materialize(), reference, rtol=0.0, atol=1e-10)
        rows = np.array([0, 5, small_graph.num_nodes, view.num_nodes - 1])
        np.testing.assert_allclose(result.gather(rows), reference[rows], rtol=0.0, atol=1e-10)

    def test_propagated_view_then_materialised_product(self, small_graph, rng):
        """propagated() after propagated_view() reuses the difference form."""
        cache = PropagationCache()
        targets, features, adjacency = _trigger_blocks(small_graph, rng)
        view = poison_graph_view(small_graph, targets, features, adjacency)
        lazy = cache.propagated_view(view, 2)
        misses = cache.misses
        full = cache.propagated(view, 2)
        assert cache.misses == misses  # served from the resident view
        np.testing.assert_array_equal(full, lazy.materialize())

    def test_shared_overlay_key_shares_entries(self, small_graph, rng):
        cache = PropagationCache()
        targets, features, adjacency = _trigger_blocks(small_graph, rng)
        first = poison_graph_view(
            small_graph, targets, features, adjacency, overlay_key="epoch-0"
        )
        second = poison_graph_view(
            small_graph, targets, features, adjacency, overlay_key="epoch-0"
        )
        assert first.cache_key == second.cache_key
        product = cache.propagated_view(first, 2)
        hits = cache.hits
        assert cache.propagated_view(second, 2) is product
        assert cache.hits == hits + 1

    def test_view_stream_stays_in_base_shard(self, small_graph, rng):
        cache = PropagationCache(max_graphs=2, max_shards=2)
        for _ in range(5):
            targets, features, adjacency = _trigger_blocks(small_graph, rng)
            view = poison_graph_view(small_graph, targets, features, adjacency)
            cache.propagated_view(view, 2)
        stats = cache.stats()
        assert stats["shards"] == 1
        assert stats["graphs"] <= 2
        # Steady state: base chain resident, each view costs exactly
        # normalize + propagate.
        before = cache.misses
        targets, features, adjacency = _trigger_blocks(small_graph, rng)
        cache.propagated_view(
            poison_graph_view(small_graph, targets, features, adjacency), 2
        )
        assert cache.misses - before == 2

    def test_incremental_normalize_on_views(self, small_graph, rng):
        from repro.graph.normalize import gcn_normalize

        cache = PropagationCache()
        cache.normalized(small_graph)
        targets, features, adjacency = _trigger_blocks(small_graph, rng)
        view = poison_graph_view(small_graph, targets, features, adjacency)
        normalized = cache.normalized(view)
        assert cache.stats()["incremental_normalizations"] == 1
        diff = (normalized - gcn_normalize(view.adjacency)).tocsr()
        max_err = float(np.abs(diff.data).max()) if diff.nnz else 0.0
        assert max_err <= 1e-10


# --------------------------------------------------------------------- #
# Warm-start surrogate (cross-epoch batching)
# --------------------------------------------------------------------- #
class TestSurrogateWarmStart:
    def test_condenser_warm_start_tracks_step_count(self, small_graph):
        config = CondensationConfig(
            epochs=1, ratio=0.2, surrogate_warm_start=True,
            surrogate_steps=6, surrogate_refresh_steps=2,
        )
        condenser = GCondX(config, cache=PropagationCache())
        condenser.initialize(small_graph, new_rng(0))
        condenser.epoch_step()
        assert condenser._state.surrogate_steps_done == 6  # cold first epoch
        condenser.epoch_step()
        assert condenser._state.surrogate_steps_done == 8  # +refresh only
        condenser.reset_surrogate()
        assert condenser._state.surrogate_steps_done == 0

    def test_cold_path_is_unaffected_by_state_fields(self, small_graph):
        """Default config: every epoch_step retrains from scratch (reference)."""
        cache = PropagationCache()
        config = CondensationConfig(epochs=1, ratio=0.2)
        condenser = GCondX(config, cache=cache)
        condenser.initialize(small_graph, new_rng(0))
        condenser.epoch_step()
        assert condenser._state.surrogate_moments is None
        assert condenser._state.surrogate_steps_done == 0

    def test_bgc_warm_start_is_deterministic(self, small_graph):
        def run_once():
            attack = BGC(
                BGCConfig(
                    poison_number=3,
                    epochs=3,
                    surrogate_warm_start=True,
                    surrogate_steps=6,
                    surrogate_refresh_steps=2,
                    trigger=TriggerConfig(trigger_size=2, hidden=16),
                )
            )
            condenser = GCondX(
                CondensationConfig(epochs=1, ratio=0.2), cache=PropagationCache()
            )
            return attack.run(small_graph, condenser, new_rng(11))

        first, second = run_once(), run_once()
        assert first.history == second.history
        np.testing.assert_array_equal(
            first.condensed.features, second.condensed.features
        )

    def test_bgc_warm_state_resets_between_runs(self, small_graph):
        attack = BGC(
            BGCConfig(
                poison_number=2, epochs=1, surrogate_warm_start=True,
                trigger=TriggerConfig(trigger_size=2, hidden=16),
            )
        )
        condenser = GCondX(
            CondensationConfig(epochs=1, ratio=0.2), cache=PropagationCache()
        )
        attack.run(small_graph, condenser, new_rng(1))
        state_after_first = attack._surrogate_state
        condenser = GCondX(
            CondensationConfig(epochs=1, ratio=0.2), cache=PropagationCache()
        )
        attack.run(small_graph, condenser, new_rng(1))
        assert attack._surrogate_state is not state_after_first


# --------------------------------------------------------------------- #
# Trainer boundary
# --------------------------------------------------------------------- #
class TestTrainerViewBoundary:
    def test_trainer_accepts_stacked_features(self, small_graph, rng):
        targets, features, adjacency = _trigger_blocks(small_graph, rng)
        view = poison_graph_view(small_graph, targets, features, adjacency)
        model = GCN(
            in_features=view.num_features,
            num_classes=view.num_classes,
            rng=new_rng(0),
            hidden=8,
        )
        trainer = Trainer(model, TrainingConfig(epochs=3, patience=2))
        result = trainer.fit(
            view.adjacency,
            view.features,
            view.labels,
            train_index=view.split.train,
        )
        assert np.isfinite(result.final_train_loss)
        accuracy = trainer.evaluate(
            view.adjacency, view.features, view.labels, view.split.test
        )
        assert 0.0 <= accuracy <= 1.0
