"""Property-based tests (hypothesis) for core invariants across the library."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.autograd import Tensor
from repro.autograd import functional as F
from repro.condensation.gradient_matching import normalize_dense_tensor, per_class_model_gradient
from repro.evaluation.metrics import attack_success_rate, clean_test_accuracy
from repro.graph.normalize import dense_gcn_normalize, gcn_normalize
from repro.graph.subgraph import attach_trigger_subgraph
from repro.utils.seed import new_rng

import scipy.sparse as sp


def random_symmetric_adjacency(rng, n, density=0.3):
    upper = np.triu((rng.random((n, n)) < density).astype(float), k=1)
    return upper + upper.T


class TestAutogradProperties:
    @given(
        rows=st.integers(min_value=1, max_value=8),
        cols=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_softmax_rows_are_distributions(self, rows, cols, seed):
        logits = new_rng(seed).normal(scale=5.0, size=(rows, cols))
        probs = F.softmax(Tensor(logits)).data
        assert np.all(probs >= 0.0)
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(rows), rtol=1e-9)

    @given(
        n=st.integers(min_value=1, max_value=10),
        c=st.integers(min_value=2, max_value=6),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_cross_entropy_is_non_negative(self, n, c, seed):
        generator = new_rng(seed)
        logits = Tensor(generator.normal(size=(n, c)))
        labels = generator.integers(0, c, size=n)
        assert F.cross_entropy(logits, labels).item() >= 0.0

    @given(
        n=st.integers(min_value=2, max_value=10),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_sum_gradient_is_ones(self, n, seed):
        data = new_rng(seed).normal(size=(n, n))
        t = Tensor(data, requires_grad=True)
        t.sum().backward()
        np.testing.assert_allclose(t.grad, np.ones((n, n)))


class TestNormalizationProperties:
    @given(
        n=st.integers(min_value=2, max_value=12),
        density=st.floats(min_value=0.0, max_value=0.8),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_normalized_adjacency_spectrum_bounded(self, n, density, seed):
        adjacency = random_symmetric_adjacency(new_rng(seed), n, density)
        normalized = dense_gcn_normalize(adjacency)
        eigenvalues = np.linalg.eigvalsh(normalized)
        assert eigenvalues.max() <= 1.0 + 1e-8
        assert eigenvalues.min() >= -1.0 - 1e-8

    @given(
        n=st.integers(min_value=2, max_value=10),
        density=st.floats(min_value=0.0, max_value=0.8),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_sparse_and_dense_normalisation_agree(self, n, density, seed):
        adjacency = random_symmetric_adjacency(new_rng(seed), n, density)
        sparse_version = gcn_normalize(sp.csr_matrix(adjacency)).toarray()
        dense_version = dense_gcn_normalize(adjacency)
        np.testing.assert_allclose(sparse_version, dense_version, atol=1e-10)

    @given(
        n=st.integers(min_value=2, max_value=8),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_tensor_normalisation_matches_numpy(self, n, seed):
        adjacency = random_symmetric_adjacency(new_rng(seed), n, 0.4)
        tensor_version = normalize_dense_tensor(Tensor(adjacency)).data
        numpy_version = dense_gcn_normalize(adjacency)
        np.testing.assert_allclose(tensor_version, numpy_version, atol=1e-9)


class TestGradientMatchingProperties:
    @given(
        n=st.integers(min_value=2, max_value=12),
        d=st.integers(min_value=1, max_value=6),
        c=st.integers(min_value=2, max_value=4),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_closed_form_gradient_matches_autograd(self, n, d, c, seed):
        generator = new_rng(seed)
        propagated = generator.normal(size=(n, d))
        labels = generator.integers(0, c, size=n)
        weight = generator.normal(size=(d, c))
        closed = per_class_model_gradient(propagated, labels, weight, np.arange(n), c)
        weight_tensor = Tensor(weight.copy(), requires_grad=True)
        F.cross_entropy(Tensor(propagated).matmul(weight_tensor), labels).backward()
        np.testing.assert_allclose(closed, weight_tensor.grad, rtol=1e-7, atol=1e-10)


class TestTriggerAttachmentProperties:
    @given(
        n=st.integers(min_value=3, max_value=15),
        num_targets=st.integers(min_value=1, max_value=3),
        trigger_size=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_attachment_preserves_host_graph(self, n, num_targets, trigger_size, seed):
        generator = new_rng(seed)
        num_targets = min(num_targets, n)
        adjacency = sp.csr_matrix(random_symmetric_adjacency(generator, n, 0.3))
        features = generator.normal(size=(n, 4))
        targets = generator.choice(n, size=num_targets, replace=False)
        trig_feat = generator.normal(size=(num_targets, trigger_size, 4))
        trig_adj = np.zeros((num_targets, trigger_size, trigger_size))
        new_adj, new_feat, index = attach_trigger_subgraph(
            adjacency, features, targets, trig_feat, trig_adj
        )
        # Host block unchanged, features preserved, trigger indices valid.
        np.testing.assert_allclose(new_adj[:n, :n].toarray(), adjacency.toarray())
        np.testing.assert_allclose(new_feat[:n], features)
        assert index.min() >= n
        assert index.max() < new_feat.shape[0]
        # Every target gained exactly one edge to its first trigger node.
        for target, block in zip(targets, index):
            assert new_adj[target, block[0]] == 1.0


class TestMetricProperties:
    @given(
        n=st.integers(min_value=1, max_value=30),
        c=st.integers(min_value=2, max_value=5),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_cta_bounds(self, n, c, seed):
        generator = new_rng(seed)
        predictions = generator.integers(0, c, size=n)
        labels = generator.integers(0, c, size=n)
        cta = clean_test_accuracy(predictions, labels, np.arange(n))
        assert 0.0 <= cta <= 1.0

    @given(
        n=st.integers(min_value=2, max_value=30),
        c=st.integers(min_value=2, max_value=5),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_asr_bounds_and_perfect_attack(self, n, c, seed):
        generator = new_rng(seed)
        labels = generator.integers(1, c, size=n)  # nobody is class 0
        predictions = np.zeros(n, dtype=int)
        asr = attack_success_rate(predictions, labels, np.arange(n), target_class=0)
        assert asr == 1.0
        random_predictions = generator.integers(0, c, size=n)
        asr_random = attack_success_rate(random_predictions, labels, np.arange(n), target_class=0)
        assert 0.0 <= asr_random <= 1.0
