"""Unit tests for the GraphData container and splits."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import GraphValidationError
from repro.graph.data import GraphData
from repro.graph.splits import SplitIndices, make_inductive_split, make_planetoid_split

from helpers import build_small_graph


class TestGraphDataValidation:
    def test_valid_graph_passes(self, tiny_graph):
        tiny_graph.validate()

    def test_non_square_adjacency_rejected(self, tiny_graph):
        with pytest.raises(GraphValidationError):
            GraphData(
                adjacency=sp.csr_matrix(np.ones((3, 4))),
                features=np.ones((3, 2)),
                labels=np.zeros(3, dtype=int),
                split=tiny_graph.split,
            )

    def test_feature_row_mismatch_rejected(self, tiny_graph):
        with pytest.raises(GraphValidationError):
            tiny_graph.with_(features=np.ones((4, 3)))

    def test_label_length_mismatch_rejected(self, tiny_graph):
        with pytest.raises(GraphValidationError):
            tiny_graph.with_(labels=np.zeros(4, dtype=int))

    def test_negative_labels_rejected(self, tiny_graph):
        labels = tiny_graph.labels.copy()
        labels[0] = -1
        with pytest.raises(GraphValidationError):
            tiny_graph.with_(labels=labels)

    def test_split_out_of_range_rejected(self, tiny_graph):
        bad_split = SplitIndices(train=np.array([99]), val=np.array([]), test=np.array([]))
        with pytest.raises(GraphValidationError):
            tiny_graph.with_(split=bad_split)


class TestGraphDataProperties:
    def test_counts(self, tiny_graph):
        assert tiny_graph.num_nodes == 6
        assert tiny_graph.num_features == 3
        assert tiny_graph.num_classes == 2
        assert tiny_graph.num_edges == 7

    def test_degrees(self, tiny_graph):
        degrees = tiny_graph.degrees()
        assert degrees.shape == (6,)
        assert degrees[2] == 3  # node 2 connects to 0, 1, 3

    def test_summary_keys(self, tiny_graph):
        summary = tiny_graph.summary()
        for key in ("nodes", "edges", "classes", "features", "train", "val", "test"):
            assert key in summary

    def test_copy_is_deep(self, tiny_graph):
        clone = tiny_graph.copy()
        clone.features[0, 0] = 99.0
        assert tiny_graph.features[0, 0] != 99.0

    def test_with_replaces_field(self, tiny_graph):
        renamed = tiny_graph.with_(name="renamed")
        assert renamed.name == "renamed"
        assert tiny_graph.name == "tiny"


class TestTrainingView:
    def test_transductive_view_is_same_object(self, small_graph):
        assert small_graph.training_view() is small_graph

    def test_inductive_view_restricts_to_train_nodes(self, small_graph):
        inductive = small_graph.with_(inductive=True)
        view = inductive.training_view()
        assert view.num_nodes == small_graph.split.train.size
        assert not view.inductive
        np.testing.assert_array_equal(
            view.labels, small_graph.labels[small_graph.split.train]
        )

    def test_inductive_view_has_no_cross_split_edges(self, small_graph):
        inductive = small_graph.with_(inductive=True)
        view = inductive.training_view()
        # Every edge in the view must connect two training nodes of the parent.
        assert view.num_edges <= small_graph.num_edges


class TestSplits:
    def test_planetoid_split_sizes(self, rng):
        labels = np.repeat(np.arange(4), 50)
        split = make_planetoid_split(labels, train_per_class=5, num_val=30, num_test=60, rng=rng)
        assert split.train.size == 20
        assert split.val.size == 30
        assert split.test.size == 60

    def test_planetoid_split_class_balance(self, rng):
        labels = np.repeat(np.arange(4), 50)
        split = make_planetoid_split(labels, train_per_class=5, num_val=30, num_test=60, rng=rng)
        counts = np.bincount(labels[split.train], minlength=4)
        np.testing.assert_array_equal(counts, [5, 5, 5, 5])

    def test_planetoid_split_disjoint(self, rng):
        labels = np.repeat(np.arange(3), 40)
        split = make_planetoid_split(labels, train_per_class=5, num_val=20, num_test=40, rng=rng)
        split.validate_disjoint()

    def test_planetoid_split_insufficient_class_raises(self, rng):
        labels = np.array([0, 0, 1])
        with pytest.raises(GraphValidationError):
            make_planetoid_split(labels, train_per_class=5, num_val=1, num_test=1, rng=rng)

    def test_planetoid_split_insufficient_remaining_raises(self, rng):
        labels = np.repeat(np.arange(2), 10)
        with pytest.raises(GraphValidationError):
            make_planetoid_split(labels, train_per_class=5, num_val=10, num_test=10, rng=rng)

    def test_inductive_split_covers_all_nodes(self, rng):
        split = make_inductive_split(100, train_fraction=0.5, val_fraction=0.2, rng=rng)
        union = np.concatenate([split.train, split.val, split.test])
        assert np.array_equal(np.sort(union), np.arange(100))

    def test_inductive_split_fraction_validation(self, rng):
        with pytest.raises(GraphValidationError):
            make_inductive_split(100, train_fraction=0.9, val_fraction=0.2, rng=rng)
        with pytest.raises(GraphValidationError):
            make_inductive_split(100, train_fraction=0.0, val_fraction=0.2, rng=rng)

    def test_overlapping_split_detection(self):
        split = SplitIndices(train=np.array([0, 1]), val=np.array([1]), test=np.array([2]))
        with pytest.raises(GraphValidationError):
            split.validate_disjoint()

    def test_split_copy_independent(self):
        split = SplitIndices(train=np.array([0]), val=np.array([1]), test=np.array([2]))
        clone = split.copy()
        clone.train[0] = 9
        assert split.train[0] == 0


class TestBuildSmallGraph:
    def test_fixture_builder_is_deterministic(self):
        a = build_small_graph(seed=3)
        b = build_small_graph(seed=3)
        assert (a.adjacency != b.adjacency).nnz == 0
        np.testing.assert_allclose(a.features, b.features)
