"""Property-based invariants of trigger attachment over randomized graphs.

Both attachment implementations — the CSR-surgery fast path
(:func:`attach_trigger_subgraph`) and the COO-rebuild reference
(:func:`attach_trigger_subgraph_coo`) — must satisfy the same structural
invariants on arbitrary inputs drawn from the library's own graph
generators:

* original node ids are preserved (the host block of the result equals the
  input adjacency, the feature prefix is untouched);
* a symmetric input yields a symmetric output;
* every trigger node is reachable from its host target node;
* the returned ``(P, t)`` trigger index map is consistent with the matrix.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graph.generators import (
    class_correlated_features,
    degree_corrected_sbm,
    stochastic_block_model,
)
from repro.graph.subgraph import attach_trigger_subgraph, attach_trigger_subgraph_coo
from repro.utils.seed import new_rng

ATTACH_PATHS = [
    pytest.param(attach_trigger_subgraph, id="csr-surgery"),
    pytest.param(attach_trigger_subgraph_coo, id="coo-reference"),
]

SEEDS = [0, 1, 2, 3, 4, 5, 6, 7]


def random_attachment_case(seed: int):
    """A randomized host graph plus trigger blocks (may repeat target nodes)."""
    rng = new_rng(seed)
    num_blocks = int(rng.integers(2, 5))
    sizes = rng.integers(5, 30, size=num_blocks)
    if seed % 2:
        adjacency = degree_corrected_sbm(sizes, p_in=0.3, p_out=0.05, rng=rng)
    else:
        adjacency = stochastic_block_model(sizes, p_in=0.25, p_out=0.04, rng=rng)
    labels = np.repeat(np.arange(num_blocks), sizes)
    num_features = int(rng.integers(4, 12))
    features = class_correlated_features(
        labels,
        num_features=num_features,
        signal_words_per_class=1,
        signal_strength=0.5,
        density=0.2,
        rng=rng,
    )
    n = adjacency.shape[0]
    num_targets = int(rng.integers(1, 6))
    trigger_size = int(rng.integers(1, 5))
    targets = rng.integers(0, n, size=num_targets)
    trigger_features = rng.normal(size=(num_targets, trigger_size, num_features))
    trigger_adjacency = (rng.random((num_targets, trigger_size, trigger_size)) < 0.4).astype(
        np.float64
    )
    return adjacency, features, targets, trigger_features, trigger_adjacency


@pytest.mark.parametrize("attach", ATTACH_PATHS)
@pytest.mark.parametrize("seed", SEEDS)
class TestAttachmentInvariants:
    def test_original_node_ids_preserved(self, attach, seed):
        adjacency, features, targets, trig_feat, trig_adj = random_attachment_case(seed)
        n = adjacency.shape[0]
        new_adj, new_feat, _ = attach(adjacency, features, targets, trig_feat, trig_adj)
        host_block = new_adj[:n, :n]
        assert (host_block != adjacency).nnz == 0
        np.testing.assert_array_equal(new_feat[:n], features)

    def test_symmetric_input_gives_symmetric_output(self, attach, seed):
        adjacency, features, targets, trig_feat, trig_adj = random_attachment_case(seed)
        assert (adjacency != adjacency.T).nnz == 0  # generators emit symmetric graphs
        new_adj, _, _ = attach(adjacency, features, targets, trig_feat, trig_adj)
        assert (new_adj != new_adj.T).nnz == 0

    def test_trigger_nodes_reachable_from_host(self, attach, seed):
        adjacency, features, targets, trig_feat, trig_adj = random_attachment_case(seed)
        new_adj, _, index_map = attach(adjacency, features, targets, trig_feat, trig_adj)
        for i, (host, trigger_nodes) in enumerate(zip(targets.tolist(), index_map)):
            # BFS from the host, restricted to nothing: every trigger node of a
            # *connected* trigger block must be reached; the first trigger node
            # always is (direct edge).  Internal blocks may be disconnected, in
            # which case only the component of trigger node 0 is required.
            reachable = {host}
            frontier = [host]
            while frontier:
                node = frontier.pop()
                row = new_adj.indices[new_adj.indptr[node] : new_adj.indptr[node + 1]]
                for neighbor in row.tolist():
                    if neighbor not in reachable:
                        reachable.add(neighbor)
                        frontier.append(neighbor)
            assert int(trigger_nodes[0]) in reachable
            block = np.triu(trig_adj[i], k=1)
            block = ((block + block.T) > 0).astype(np.float64)
            component = {0}
            changed = True
            while changed:
                changed = False
                for r in range(block.shape[0]):
                    if r in component:
                        for c in np.flatnonzero(block[r]).tolist():
                            if c not in component:
                                component.add(c)
                                changed = True
            for local in component:
                assert int(trigger_nodes[local]) in reachable

    def test_index_map_consistent(self, attach, seed):
        adjacency, features, targets, trig_feat, trig_adj = random_attachment_case(seed)
        n = adjacency.shape[0]
        num_targets, trigger_size, _ = trig_feat.shape
        new_adj, new_feat, index_map = attach(
            adjacency, features, targets, trig_feat, trig_adj
        )
        assert index_map.shape == (num_targets, trigger_size)
        np.testing.assert_array_equal(
            index_map.reshape(-1), n + np.arange(num_targets * trigger_size)
        )
        dense = new_adj.toarray()
        for i, (host, trigger_nodes) in enumerate(zip(targets.tolist(), index_map)):
            # The host-trigger connector edge exists, symmetrically.
            assert dense[host, trigger_nodes[0]] == 1.0
            assert dense[trigger_nodes[0], host] == 1.0
            # Internal edges match the symmetrised upper triangle of the block.
            upper = np.triu(trig_adj[i], k=1) != 0
            expected = (upper | upper.T).astype(np.float64)
            block = dense[np.ix_(trigger_nodes, trigger_nodes)]
            np.testing.assert_array_equal(block, expected)
            # Trigger features land on the mapped rows.
            np.testing.assert_array_equal(new_feat[trigger_nodes], trig_feat[i])

    def test_no_stray_edges_between_blocks(self, attach, seed):
        adjacency, features, targets, trig_feat, trig_adj = random_attachment_case(seed)
        n = adjacency.shape[0]
        new_adj, _, index_map = attach(adjacency, features, targets, trig_feat, trig_adj)
        dense = new_adj.toarray()
        for i, trigger_nodes in enumerate(index_map):
            others = np.setdiff1d(
                np.arange(n, dense.shape[0]), np.asarray(trigger_nodes)
            )
            # Trigger nodes never connect to other blocks' trigger nodes.
            assert dense[np.ix_(trigger_nodes, others)].sum() == 0.0
            # And only trigger node 0 touches the host graph.
            host_cols = dense[np.ix_(trigger_nodes[1:], np.arange(n))]
            assert host_cols.sum() == 0.0


@pytest.mark.parametrize("attach", ATTACH_PATHS)
def test_empty_target_set(attach):
    adjacency, features, _, _, _ = random_attachment_case(0)
    trig_feat = np.zeros((0, 3, features.shape[1]))
    trig_adj = np.zeros((0, 3, 3))
    new_adj, new_feat, index_map = attach(
        adjacency, features, np.zeros(0, dtype=np.int64), trig_feat, trig_adj
    )
    assert new_adj.shape == adjacency.shape
    assert (new_adj != adjacency).nnz == 0
    np.testing.assert_array_equal(new_feat, features)
    assert index_map.shape == (0, 3)
