"""Unit tests for the transferability sweep spec, matrix report and CLI verb."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.api import ExperimentSpec, RunRecord, SweepSpec, TransferSweepSpec
from repro.cli import _split_axis_flag, build_parser, main, transfer_spec_from_args
from repro.evaluation.reporting import (
    NO_DEFENSE_LABEL,
    format_transfer_matrix,
    transfer_cell_metrics,
    transfer_matrix,
)
from repro.exceptions import ConfigurationError
from repro.registry import DEFENSES, MODELS


class TestTransferSweepSpec:
    def test_defaults(self):
        spec = TransferSweepSpec()
        assert spec.models is None
        assert spec.defenses is None
        assert spec.name == "transfer"
        assert spec.seed == 0

    def test_none_axes_resolve_to_registries(self):
        spec = TransferSweepSpec()
        assert spec.resolved_models() == MODELS.available()
        assert spec.resolved_defenses() == [None, *DEFENSES.available()]

    def test_gat_and_robust_training_are_in_the_default_matrix(self):
        spec = TransferSweepSpec()
        assert "gat" in spec.resolved_models()
        defenses = spec.resolved_defenses()
        assert "dropedge" in defenses and "dropnode" in defenses

    def test_explicit_axes_kept_in_order(self):
        spec = TransferSweepSpec(models=["mlp", "gcn"], defenses=[None, "prune"])
        assert spec.resolved_models() == ["mlp", "gcn"]
        assert spec.resolved_defenses() == [None, "prune"]

    def test_string_axis_rejected(self):
        with pytest.raises(ConfigurationError):
            TransferSweepSpec(models="gcn")

    def test_empty_axis_rejected(self):
        with pytest.raises(ConfigurationError):
            TransferSweepSpec(defenses=[])

    def test_unknown_model_rejected_at_resolution(self):
        with pytest.raises(ConfigurationError):
            TransferSweepSpec(models=["no-such-model"]).resolved_models()

    def test_unknown_defense_rejected_at_resolution(self):
        with pytest.raises(ConfigurationError):
            TransferSweepSpec(defenses=["no-such-defense"]).resolved_defenses()

    def test_to_sweep_expands_full_grid(self):
        spec = TransferSweepSpec(models=["gcn", "mlp"], defenses=[None, "prune"], seed=3)
        sweep = spec.to_sweep()
        assert isinstance(sweep, SweepSpec)
        assert list(sweep.axes) == ["model", "defense"]
        cells = sweep.expand()
        assert len(cells) == 4
        assert [cell.model.name for cell in cells] == ["gcn", "gcn", "mlp", "mlp"]
        assert [cell.defense.is_set for cell in cells] == [False, True, False, True]

    def test_round_trips_through_json(self):
        spec = TransferSweepSpec(
            base=ExperimentSpec.from_dict({"dataset": "tiny", "attack": "naive"}),
            models=["gcn"],
            defenses=[None, "prune"],
            seed=7,
            name="paper-table",
        )
        assert TransferSweepSpec.from_json(spec.to_json()) == spec

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ConfigurationError):
            TransferSweepSpec.from_dict({"modles": ["gcn"]})


def _record(model, defense, *, status="ok", **metrics):
    spec = ExperimentSpec.from_dict(
        {"dataset": "tiny", "model": model, "attack": "naive", "defense": defense}
    )
    return RunRecord(spec=spec, status=status, **metrics)


class TestTransferMatrix:
    def test_cell_metrics_prefer_defended_numbers(self):
        record = _record(
            "gcn", "prune", defense_cta=0.8, defense_asr=0.1, attack_cta=0.7, attack_asr=0.9
        )
        assert transfer_cell_metrics(record) == (0.8, 0.1)

    def test_cell_metrics_fall_back_to_attacked_numbers(self):
        record = _record("gcn", None, attack_cta=0.7, attack_asr=0.9)
        assert transfer_cell_metrics(record) == (0.7, 0.9)

    def test_cell_metrics_use_clean_without_attack(self):
        spec = ExperimentSpec.from_dict({"dataset": "tiny", "model": "gcn"})
        record = RunRecord(spec=spec, clean_cta=0.6)
        cta, asr = transfer_cell_metrics(record)
        assert cta == 0.6 and np.isnan(asr)

    def test_matrix_covers_grid_in_order(self):
        records = [
            _record("gcn", None, attack_cta=0.7, attack_asr=0.9),
            _record("gcn", "prune", defense_cta=0.8, defense_asr=0.1),
            _record("mlp", None, attack_cta=0.5, attack_asr=0.4),
            _record("mlp", "prune", defense_cta=0.6, defense_asr=0.2),
        ]
        matrix = transfer_matrix(records)
        assert matrix["models"] == ["gcn", "mlp"]
        assert matrix["defenses"] == [NO_DEFENSE_LABEL, "prune"]
        assert matrix["dataset"] == "tiny"
        assert matrix["attack"] == "naive"
        assert len(matrix["cells"]) == 4
        assert matrix["cells"][1] == {
            "model": "gcn",
            "defense": "prune",
            "cell_index": None,
            "cta": 0.8,
            "asr": 0.1,
            "status": "ok",
        }

    def test_matrix_ships_nan_as_null(self):
        matrix = transfer_matrix([_record("gcn", None)])
        assert matrix["cells"][0]["cta"] is None
        assert json.loads(json.dumps(matrix))  # strictly JSON-serialisable

    def test_format_renders_grid(self):
        records = [
            _record("gcn", None, attack_cta=0.7, attack_asr=0.9),
            _record("gcn", "prune", defense_cta=0.8, defense_asr=0.1),
        ]
        text = format_transfer_matrix(transfer_matrix(records))
        lines = text.splitlines()
        assert lines[0] == "| model | none | prune |"
        assert "| gcn | 70.00 / 90.00 | 80.00 / 10.00 |" in lines

    def test_format_marks_failed_and_missing_cells(self):
        records = [
            _record("gcn", None, attack_cta=0.7, attack_asr=0.9),
            _record("gcn", "prune", status="failed"),
            _record("mlp", None, attack_cta=0.5, attack_asr=0.4),
        ]
        text = format_transfer_matrix(transfer_matrix(records))
        row = next(line for line in text.splitlines() if line.startswith("| gcn"))
        assert "failed" in row
        row = next(line for line in text.splitlines() if line.startswith("| mlp"))
        assert "--" in row


class TestTransferCli:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["transfer"])
        assert args.command == "transfer"
        assert args.dataset == "tiny"
        assert args.condenser == "gcond"
        assert args.attack == "naive"

    def test_split_axis_flag(self):
        assert _split_axis_flag(None) is None
        assert _split_axis_flag("gcn, mlp") == ["gcn", "mlp"]
        assert _split_axis_flag("none,prune") == [None, "prune"]
        with pytest.raises(ConfigurationError):
            _split_axis_flag(",")

    def test_spec_from_quick_form_args(self):
        args = build_parser().parse_args(
            ["transfer", "--dataset", "tiny", "--models", "gcn,mlp", "--defenses", "none,prune"]
        )
        spec = transfer_spec_from_args(args)
        assert spec.base.dataset.name == "tiny"
        assert spec.models == ["gcn", "mlp"]
        assert spec.defenses == [None, "prune"]

    def test_spec_from_file(self, tmp_path):
        payload = {"base": {"dataset": "tiny"}, "models": ["gcn"], "seed": 4}
        path = tmp_path / "transfer.json"
        path.write_text(json.dumps(payload))
        args = build_parser().parse_args(["transfer", "--spec", str(path)])
        spec = transfer_spec_from_args(args)
        assert spec.models == ["gcn"]
        assert spec.seed == 4

    def test_end_to_end_matrix_on_tiny(self, tmp_path, capsys):
        matrix_path = tmp_path / "matrix.json"
        exit_code = main(
            [
                "transfer",
                "--dataset",
                "tiny",
                "--epochs",
                "1",
                "--eval-epochs",
                "3",
                "--models",
                "gcn,mlp",
                "--defenses",
                "none,prune",
                "--matrix-out",
                str(matrix_path),
            ]
        )
        assert exit_code == 0
        matrix = json.loads(matrix_path.read_text())
        assert matrix["models"] == ["gcn", "mlp"]
        assert matrix["defenses"] == [NO_DEFENSE_LABEL, "prune"]
        assert all(cell["status"] == "ok" for cell in matrix["cells"])
        out = capsys.readouterr().out
        assert "| model |" in out
