"""Unit tests for subgraph extraction and trigger attachment."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import GraphValidationError
from repro.graph.subgraph import attach_trigger_subgraph, induced_subgraph, k_hop_subgraph


@pytest.fixture
def chain():
    """A 5-node chain 0-1-2-3-4."""
    adjacency = np.zeros((5, 5))
    for i in range(4):
        adjacency[i, i + 1] = adjacency[i + 1, i] = 1.0
    return sp.csr_matrix(adjacency)


class TestKHopSubgraph:
    def test_zero_hops_is_just_center(self, chain):
        nodes, sub = k_hop_subgraph(chain, 2, 0)
        np.testing.assert_array_equal(nodes, [2])
        assert sub.shape == (1, 1)

    def test_one_hop_of_chain_center(self, chain):
        nodes, sub = k_hop_subgraph(chain, 2, 1)
        np.testing.assert_array_equal(nodes, [1, 2, 3])
        assert sub.nnz == 4  # edges 1-2 and 2-3, both directions

    def test_two_hops_covers_whole_chain(self, chain):
        nodes, _ = k_hop_subgraph(chain, 2, 2)
        np.testing.assert_array_equal(nodes, [0, 1, 2, 3, 4])

    def test_hops_beyond_diameter_saturate(self, chain):
        nodes, _ = k_hop_subgraph(chain, 0, 100)
        assert nodes.size == 5

    def test_out_of_range_center_rejected(self, chain):
        with pytest.raises(GraphValidationError):
            k_hop_subgraph(chain, 10, 1)

    def test_isolated_node(self):
        adjacency = sp.csr_matrix((3, 3))
        nodes, sub = k_hop_subgraph(adjacency, 1, 2)
        np.testing.assert_array_equal(nodes, [1])
        assert sub.nnz == 0


class TestInducedSubgraph:
    def test_relabelling(self, chain):
        features = np.arange(10.0).reshape(5, 2)
        labels = np.array([0, 1, 0, 1, 0])
        sub_adj, sub_feat, sub_labels, mapping = induced_subgraph(
            chain, features, labels, np.array([1, 3, 4])
        )
        assert sub_adj.shape == (3, 3)
        np.testing.assert_allclose(sub_feat, features[[1, 3, 4]])
        np.testing.assert_array_equal(sub_labels, labels[[1, 3, 4]])
        assert mapping == {1: 0, 3: 1, 4: 2}

    def test_edges_preserved_within_selection(self, chain):
        sub_adj, *_ = induced_subgraph(
            chain, np.zeros((5, 1)), np.zeros(5, dtype=int), np.array([2, 3])
        )
        assert sub_adj[0, 1] == 1.0  # edge 2-3 survives

    def test_edges_to_outside_dropped(self, chain):
        sub_adj, *_ = induced_subgraph(
            chain, np.zeros((5, 1)), np.zeros(5, dtype=int), np.array([0, 4])
        )
        assert sub_adj.nnz == 0


class TestAttachTrigger:
    def make_triggers(self, num_targets, trigger_size=2, dim=3):
        features = np.ones((num_targets, trigger_size, dim))
        adjacency = np.zeros((num_targets, trigger_size, trigger_size))
        adjacency[:, 0, 1] = adjacency[:, 1, 0] = 1.0
        return features, adjacency

    def test_node_count_grows(self, chain):
        features = np.zeros((5, 3))
        trig_feat, trig_adj = self.make_triggers(2)
        new_adj, new_feat, index = attach_trigger_subgraph(
            chain, features, np.array([0, 4]), trig_feat, trig_adj
        )
        assert new_adj.shape == (9, 9)
        assert new_feat.shape == (9, 3)
        assert index.shape == (2, 2)

    def test_host_connected_to_first_trigger_node(self, chain):
        features = np.zeros((5, 3))
        trig_feat, trig_adj = self.make_triggers(1)
        new_adj, _, index = attach_trigger_subgraph(
            chain, features, np.array([2]), trig_feat, trig_adj
        )
        first_trigger = index[0, 0]
        assert new_adj[2, first_trigger] == 1.0
        assert new_adj[first_trigger, 2] == 1.0

    def test_internal_trigger_edges_present(self, chain):
        features = np.zeros((5, 3))
        trig_feat, trig_adj = self.make_triggers(1)
        new_adj, _, index = attach_trigger_subgraph(
            chain, features, np.array([2]), trig_feat, trig_adj
        )
        a, b = index[0]
        assert new_adj[a, b] == 1.0

    def test_original_edges_preserved(self, chain):
        features = np.zeros((5, 3))
        trig_feat, trig_adj = self.make_triggers(1)
        new_adj, *_ = attach_trigger_subgraph(
            chain, features, np.array([2]), trig_feat, trig_adj
        )
        original = new_adj[:5, :5].toarray()
        np.testing.assert_allclose(original, chain.toarray())

    def test_trigger_features_copied(self, chain):
        features = np.zeros((5, 3))
        trig_feat, trig_adj = self.make_triggers(1)
        trig_feat[0, 1] = [7.0, 8.0, 9.0]
        _, new_feat, index = attach_trigger_subgraph(
            chain, features, np.array([2]), trig_feat, trig_adj
        )
        np.testing.assert_allclose(new_feat[index[0, 1]], [7.0, 8.0, 9.0])

    def test_shape_validation(self, chain):
        features = np.zeros((5, 3))
        trig_feat, trig_adj = self.make_triggers(2)
        with pytest.raises(GraphValidationError):
            attach_trigger_subgraph(chain, features, np.array([0]), trig_feat, trig_adj)

    def test_feature_dim_validation(self, chain):
        features = np.zeros((5, 4))
        trig_feat, trig_adj = self.make_triggers(1, dim=3)
        with pytest.raises(GraphValidationError):
            attach_trigger_subgraph(chain, features, np.array([0]), trig_feat, trig_adj)

    def test_adjacency_remains_binary(self, chain):
        features = np.zeros((5, 3))
        trig_feat, trig_adj = self.make_triggers(3)
        new_adj, *_ = attach_trigger_subgraph(
            chain, features, np.array([1, 2, 3]), trig_feat, trig_adj
        )
        assert new_adj.max() <= 1.0
