"""The spec→docs contract: documentation that cannot silently rot.

Four guarantees, all enforced on every tier-1 run (and by the CI ``docs``
job):

1. every registered component name *and alias* appears in ``docs/api.md`` —
   registering a component without documenting it fails the build;
2. every fenced ```json block in ``docs/`` parses, and blocks shaped like
   sweeps / experiment specs round-trip exactly through
   ``SweepSpec.from_json`` / ``ExperimentSpec.from_json``;
3. every intra-repo markdown link in ``docs/``, ``README.md`` and
   ``ROADMAP.md`` resolves to an existing file;
4. every fenced ```python block in ``docs/`` executes against the real
   package (examples use the ``tiny`` dataset, so this stays fast).
"""

from __future__ import annotations

import json
import os
import re
from pathlib import Path

import pytest

import repro  # noqa: F401  (imports populate the registries)
from repro.api import ExperimentSpec, SweepSpec
from repro.api.spec import COMPONENT_FIELDS
from repro.registry import all_registries

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS_DIR = REPO_ROOT / "docs"
DOC_PAGES = ("index.md", "architecture.md", "api.md", "benchmarks.md")
LINK_CHECKED = [
    *(DOCS_DIR / page for page in DOC_PAGES),
    REPO_ROOT / "README.md",
    REPO_ROOT / "ROADMAP.md",
]

_FENCE = re.compile(r"```(\w*)\n(.*?)```", re.DOTALL)
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def _fenced_blocks(text: str, language: str):
    """All fenced code blocks of ``language`` in a markdown string."""
    return [body for lang, body in _FENCE.findall(text) if lang == language]


def _strip_fences(text: str) -> str:
    """Markdown with every fenced block removed (links in code are not links)."""
    return _FENCE.sub("", text)


def _doc_text(name: str) -> str:
    return (DOCS_DIR / name).read_text(encoding="utf-8")


class TestDocsTreeExists:
    @pytest.mark.parametrize("page", DOC_PAGES)
    def test_page_exists_and_has_content(self, page):
        path = DOCS_DIR / page
        assert path.is_file(), f"docs/{page} is missing"
        assert len(path.read_text(encoding="utf-8")) > 500

    def test_readme_links_into_docs(self):
        readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        for page in DOC_PAGES:
            assert f"docs/{page}" in readme, f"README.md does not link docs/{page}"


class TestRegistryContract:
    """docs/api.md must list every registered name and alias, and vice versa
    cannot name components that do not exist."""

    def test_every_component_name_and_alias_is_documented(self):
        api_text = _doc_text("api.md")
        missing = []
        for kind, registry in all_registries().items():
            for name in registry.known():  # canonical names AND aliases
                if f"`{name}`" not in api_text:
                    missing.append(f"{kind}:{name}")
        assert not missing, (
            "registered components missing from docs/api.md: "
            f"{missing} — update the registry table"
        )

    def test_every_kernel_backend_is_documented(self):
        from repro.kernels import KERNEL_BACKEND_ENV, available_kernel_backends

        api_text = _doc_text("api.md")
        missing = [
            name
            for name in available_kernel_backends()
            if f"`{name}`" not in api_text
        ]
        assert not missing, (
            "registered kernel backends missing from docs/api.md: "
            f"{missing} — update the kernel-backend table"
        )
        # The env-var table claims completeness; the kernel knobs belong in it.
        assert f"`{KERNEL_BACKEND_ENV}`" in api_text
        assert "`REPRO_KERNEL_THREADS`" in api_text


class TestJsonBlocks:
    def _all_json_blocks(self):
        blocks = []
        for page in DOC_PAGES:
            for body in _fenced_blocks(_doc_text(page), "json"):
                blocks.append((page, body))
        return blocks

    def test_every_json_block_parses(self):
        blocks = self._all_json_blocks()
        assert blocks, "expected at least one ```json block in docs/"
        for page, body in blocks:
            try:
                json.loads(body)
            except json.JSONDecodeError as error:
                pytest.fail(f"unparseable json block in docs/{page}: {error}")

    def test_spec_shaped_blocks_round_trip(self):
        """Sweep-shaped blocks go through SweepSpec, cell-shaped ones through
        ExperimentSpec; both must round-trip exactly."""
        round_tripped = 0
        for page, body in self._all_json_blocks():
            payload = json.loads(body)
            if not isinstance(payload, dict):
                continue
            if "axes" in payload:
                sweep = SweepSpec.from_json(body)
                assert SweepSpec.from_json(sweep.to_json()) == sweep, page
                assert sweep.num_cells >= 1
                round_tripped += 1
            elif set(payload) <= set(COMPONENT_FIELDS) | {"seed"}:
                spec = ExperimentSpec.from_json(body)
                assert ExperimentSpec.from_json(spec.to_json()) == spec, page
                round_tripped += 1
        assert round_tripped >= 2, "expected sweep and experiment examples in docs/"

    def test_documented_sweep_matches_shipped_example(self):
        """The api.md walkthrough quotes examples/sweep.json — verbatim."""
        shipped = SweepSpec.from_json(
            (REPO_ROOT / "examples" / "sweep.json").read_text(encoding="utf-8")
        )
        documented = None
        for body in _fenced_blocks(_doc_text("api.md"), "json"):
            payload = json.loads(body)
            if isinstance(payload, dict) and "axes" in payload:
                documented = SweepSpec.from_json(body)
                break
        assert documented is not None, "api.md lost its sweep walkthrough"
        assert documented == shipped, (
            "docs/api.md's sweep walkthrough no longer matches "
            "examples/sweep.json"
        )


class TestMarkdownLinks:
    @pytest.mark.parametrize("path", LINK_CHECKED, ids=lambda p: p.name)
    def test_intra_repo_links_resolve(self, path):
        assert path.is_file(), f"{path} is missing"
        text = _strip_fences(path.read_text(encoding="utf-8"))
        dead = []
        for target in _LINK.findall(text):
            if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, mailto:, ...
                continue
            relative = target.split("#", 1)[0]
            if not relative:  # pure in-page anchor
                continue
            if not (path.parent / relative).resolve().exists():
                dead.append(target)
        assert not dead, f"dead intra-repo links in {path.name}: {dead}"


class TestPythonBlocksExecute:
    """Every ```python block in docs/ must run (on the tiny dataset)."""

    @pytest.mark.parametrize("page", DOC_PAGES)
    def test_python_blocks_run(self, page, monkeypatch, capsys):
        import sys
        import types

        blocks = _fenced_blocks(_doc_text(page), "python")
        monkeypatch.chdir(REPO_ROOT)  # examples use repo-root-relative paths
        for index, body in enumerate(blocks):
            # A real module context so e.g. @dataclass examples resolve their
            # module globals the way they would in user code.
            module = types.ModuleType(f"docs_example_{index}")
            sys.modules[module.__name__] = module
            try:
                exec(compile(body, f"docs/{page}[python #{index}]", "exec"), module.__dict__)
            except Exception as error:  # pragma: no cover - failure reporting
                pytest.fail(f"python block #{index} in docs/{page} raised: {error!r}")
            finally:
                sys.modules.pop(module.__name__, None)
        capsys.readouterr()  # swallow example prints

    def test_docs_contain_python_examples(self):
        total = sum(len(_fenced_blocks(_doc_text(page), "python")) for page in DOC_PAGES)
        assert total >= 3
