"""Unit tests for gradient-matching condensation (DC-Graph / GCond / GCond-X)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.autograd import functional as F
from repro.condensation import CondensationConfig, make_condenser
from repro.condensation.gradient_matching import (
    GradientMatchingCondenser,
    StructureGenerator,
    all_class_model_gradients,
    gradient_distance,
    normalize_dense_tensor,
    per_class_model_gradient,
)
from repro.exceptions import CondensationError
from repro.utils.seed import new_rng


class TestPerClassGradient:
    def test_matches_autograd_gradient(self, rng):
        n, d, c = 12, 6, 3
        propagated = rng.normal(size=(n, d))
        labels = rng.integers(0, c, size=n)
        weight = rng.normal(size=(d, c))
        index = np.arange(n)

        closed_form = per_class_model_gradient(propagated, labels, weight, index, c)

        weight_tensor = Tensor(weight.copy(), requires_grad=True)
        loss = F.cross_entropy(Tensor(propagated).matmul(weight_tensor), labels)
        loss.backward()
        np.testing.assert_allclose(closed_form, weight_tensor.grad, rtol=1e-8)

    def test_empty_index_returns_zeros(self, rng):
        weight = rng.normal(size=(4, 2))
        gradient = per_class_model_gradient(
            rng.normal(size=(5, 4)), np.zeros(5, dtype=int), weight, np.array([], dtype=int), 2
        )
        np.testing.assert_allclose(gradient, np.zeros_like(weight))

    def test_subset_index_uses_only_those_rows(self, rng):
        propagated = rng.normal(size=(6, 3))
        labels = np.array([0, 0, 0, 1, 1, 1])
        weight = rng.normal(size=(3, 2))
        full = per_class_model_gradient(propagated, labels, weight, np.arange(6), 2)
        class0 = per_class_model_gradient(propagated, labels, weight, np.arange(3), 2)
        assert not np.allclose(full, class0)


class TestAllClassGradients:
    """The vectorised one-pass routine must agree with the scalar per-class one."""

    def test_matches_per_class_routine(self, rng):
        n, d, c = 40, 7, 4
        propagated = rng.normal(size=(n, d))
        labels = rng.integers(0, c, size=n)
        weight = rng.normal(size=(d, c))
        # A shuffled, strict-subset index mirrors how train splits look.
        index = rng.permutation(n)[: n - 5]

        vectorised = all_class_model_gradients(propagated, labels, weight, index, c)
        for cls in range(c):
            class_index = index[labels[index] == cls]
            if class_index.size == 0:
                assert cls not in vectorised
                continue
            expected = per_class_model_gradient(propagated, labels, weight, class_index, c)
            np.testing.assert_allclose(vectorised[cls], expected, rtol=1e-12, atol=1e-14)

    def test_absent_class_is_omitted(self, rng):
        propagated = rng.normal(size=(6, 3))
        labels = np.array([0, 0, 0, 2, 2, 2])
        weight = rng.normal(size=(3, 3))
        gradients = all_class_model_gradients(propagated, labels, weight, np.arange(6), 3)
        assert set(gradients) == {0, 2}

    def test_empty_index_returns_empty_mapping(self, rng):
        weight = rng.normal(size=(4, 2))
        gradients = all_class_model_gradients(
            rng.normal(size=(5, 4)), np.zeros(5, dtype=int), weight, np.array([], dtype=int), 2
        )
        assert gradients == {}


class TestGradientDistance:
    def test_cosine_distance_zero_for_identical(self, rng):
        gradient = rng.normal(size=(5, 3))
        distance = gradient_distance(gradient, Tensor(gradient.copy(), requires_grad=True))
        assert distance.item() == pytest.approx(0.0, abs=1e-8)

    def test_cosine_distance_scale_invariant(self, rng):
        gradient = rng.normal(size=(5, 3))
        scaled = gradient_distance(gradient, Tensor(2.0 * gradient, requires_grad=True))
        assert scaled.item() == pytest.approx(0.0, abs=1e-6)

    def test_cosine_distance_max_for_opposite(self, rng):
        gradient = rng.normal(size=(5, 3))
        distance = gradient_distance(gradient, Tensor(-gradient, requires_grad=True))
        assert distance.item() == pytest.approx(2.0 * 3, rel=1e-6)

    def test_euclidean_distance(self, rng):
        gradient = rng.normal(size=(4, 2))
        other = gradient + 1.0
        distance = gradient_distance(gradient, Tensor(other, requires_grad=True), metric="euclidean")
        assert distance.item() == pytest.approx(float(((other - gradient) ** 2).sum()))

    def test_unknown_metric_rejected(self, rng):
        with pytest.raises(CondensationError):
            gradient_distance(np.ones((2, 2)), Tensor(np.ones((2, 2))), metric="chebyshev")

    def test_distance_is_differentiable(self, rng):
        target = rng.normal(size=(4, 2))
        synthetic = Tensor(rng.normal(size=(4, 2)), requires_grad=True)
        gradient_distance(target, synthetic).backward()
        assert synthetic.grad is not None
        assert synthetic.grad.shape == (4, 2)


class TestNormalizeDenseTensor:
    def test_matches_numpy_normalisation(self, rng):
        from repro.graph.normalize import dense_gcn_normalize

        adjacency = (rng.random((6, 6)) < 0.4).astype(float)
        adjacency = np.triu(adjacency, 1)
        adjacency = adjacency + adjacency.T
        tensor_version = normalize_dense_tensor(Tensor(adjacency)).data
        numpy_version = dense_gcn_normalize(adjacency)
        np.testing.assert_allclose(tensor_version, numpy_version, atol=1e-10)

    def test_gradient_flows_through_normalisation(self, rng):
        adjacency = Tensor(rng.random((4, 4)), requires_grad=True)
        normalize_dense_tensor(adjacency).sum().backward()
        assert adjacency.grad is not None


class TestStructureGenerator:
    def test_output_is_symmetric_valid_adjacency(self, rng):
        generator = StructureGenerator(num_features=6, hidden=8, rng=rng)
        features = Tensor(rng.normal(size=(5, 6)))
        adjacency = generator(features).data
        np.testing.assert_allclose(adjacency, adjacency.T, atol=1e-10)
        assert np.all(adjacency >= 0.0)
        assert np.all(adjacency <= 1.0)
        np.testing.assert_allclose(np.diag(adjacency), np.zeros(5))

    def test_fresh_generator_is_sparse_leaning(self, rng):
        generator = StructureGenerator(num_features=6, hidden=8, rng=rng)
        adjacency = generator(Tensor(rng.normal(size=(8, 6)))).data
        # The score bias keeps a freshly initialised structure well below 0.5.
        assert adjacency.mean() < 0.5


class TestCondensers:
    @pytest.mark.parametrize("name", ["dc-graph", "gcond", "gcond-x"])
    def test_condense_produces_expected_budget(self, name, small_graph, rng):
        config = CondensationConfig(epochs=3, ratio=0.2)
        condenser = make_condenser(name, config)
        condensed = condenser.condense(small_graph, rng)
        assert condensed.num_nodes >= small_graph.num_classes
        assert condensed.method == condenser.name
        assert condensed.features.shape[1] == small_graph.num_features
        assert set(np.unique(condensed.labels)) <= set(range(small_graph.num_classes))

    def test_structure_free_condensers_use_identity(self, small_graph, rng):
        for name in ("dc-graph", "gcond-x"):
            condenser = make_condenser(name, CondensationConfig(epochs=2, ratio=0.2))
            condensed = condenser.condense(small_graph, rng)
            np.testing.assert_allclose(condensed.adjacency, np.eye(condensed.num_nodes))

    def test_gcond_learns_structure(self, small_graph, rng):
        condenser = make_condenser("gcond", CondensationConfig(epochs=2, ratio=0.3))
        condensed = condenser.condense(small_graph, rng)
        assert condensed.adjacency.shape == (condensed.num_nodes, condensed.num_nodes)
        np.testing.assert_allclose(np.diag(condensed.adjacency), 0.0)

    def test_outer_step_before_initialize_raises(self):
        condenser = make_condenser("gcond")
        with pytest.raises(CondensationError):
            condenser.outer_step()

    def test_synthetic_before_initialize_raises(self):
        condenser = make_condenser("dc-graph")
        with pytest.raises(CondensationError):
            condenser.synthetic()

    def test_matching_loss_decreases_over_epochs(self, small_graph):
        condenser = make_condenser("gcond-x", CondensationConfig(epochs=1, ratio=0.3))
        generator = new_rng(0)
        condenser.initialize(small_graph, generator)
        condenser.reset_surrogate()
        condenser.train_surrogate()
        losses = [condenser.outer_step() for _ in range(15)]
        assert losses[-1] < losses[0]

    def test_surrogate_training_reduces_loss(self, small_graph):
        condenser = make_condenser("gcond-x", CondensationConfig(epochs=1, ratio=0.3))
        condenser.initialize(small_graph, new_rng(0))
        condenser.reset_surrogate()
        first = condenser.train_surrogate(steps=1)
        later = condenser.train_surrogate(steps=30)
        assert later < first

    def test_epoch_step_accepts_external_graph(self, small_graph, rng):
        condenser = make_condenser("gcond-x", CondensationConfig(epochs=1, ratio=0.3))
        condenser.initialize(small_graph, rng)
        loss = condenser.epoch_step(small_graph)
        assert np.isfinite(loss)

    def test_inductive_graph_condenses_training_view(self, small_graph, rng):
        inductive = small_graph.with_(inductive=True)
        condenser = make_condenser("gcond-x", CondensationConfig(epochs=2, ratio=0.5))
        condensed = condenser.condense(inductive, rng)
        # Budget is computed against the 18-node training view.
        assert condensed.num_nodes <= inductive.split.train.size

    def test_synthetic_labels_cover_training_classes(self, small_graph, rng):
        condenser = make_condenser("dc-graph", CondensationConfig(epochs=2, ratio=0.2))
        condensed = condenser.condense(small_graph, rng)
        train_classes = set(np.unique(small_graph.labels[small_graph.split.train]))
        assert set(np.unique(condensed.labels)) == train_classes


class TestGradientMatchingAsClass:
    def test_base_class_flags(self):
        assert GradientMatchingCondenser.use_structure is False
        assert GradientMatchingCondenser.propagate_real is True
