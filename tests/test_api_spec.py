"""Tests for ExperimentSpec / SweepSpec serialization and expansion."""

from __future__ import annotations

import json

import pytest

from repro.api.spec import (
    ComponentSpec,
    ExecutionSpec,
    ExperimentSpec,
    SweepSpec,
    derive_cell_seed,
)
from repro.exceptions import ConfigurationError

FULL_PAYLOAD = {
    "dataset": {"name": "cora", "overrides": {"seed": 3}},
    "model": "sgc",
    "condenser": {"name": "gcond", "overrides": {"epochs": 30, "ratio": 0.026}},
    "attack": {"name": "bgc", "overrides": {"poison_ratio": 0.1, "trigger.trigger_size": 2}},
    "defense": "prune",
    "trigger": {"name": "mlp", "overrides": {"hidden": 32}},
    "evaluation": {"overrides": {"epochs": 150}},
    "seed": 11,
}


class TestComponentSpec:
    def test_coerce_shorthands(self):
        assert ComponentSpec.coerce(None) == ComponentSpec()
        assert ComponentSpec.coerce("gcond") == ComponentSpec("gcond")
        assert ComponentSpec.coerce({"name": "bgc", "overrides": {"epochs": 2}}) == ComponentSpec(
            "bgc", {"epochs": 2}
        )
        existing = ComponentSpec("x", {"a": 1})
        assert ComponentSpec.coerce(existing) is existing

    def test_coerce_rejects_unknown_keys(self):
        with pytest.raises(ConfigurationError, match="unknown component keys"):
            ComponentSpec.coerce({"name": "x", "oops": 1})

    def test_coerce_rejects_wrong_type(self):
        with pytest.raises(ConfigurationError):
            ComponentSpec.coerce(42)

    def test_with_override_does_not_mutate(self):
        spec = ComponentSpec("bgc", {"a": 1})
        updated = spec.with_override("b", 2)
        assert spec.overrides == {"a": 1}
        assert updated.overrides == {"a": 1, "b": 2}


class TestExperimentSpecRoundTrip:
    def test_exact_dict_round_trip(self):
        spec = ExperimentSpec.from_dict(FULL_PAYLOAD)
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    def test_exact_json_round_trip(self):
        spec = ExperimentSpec.from_dict(FULL_PAYLOAD)
        assert ExperimentSpec.from_json(spec.to_json()) == spec

    def test_round_trip_preserves_dot_path_overrides(self):
        spec = ExperimentSpec.from_dict(FULL_PAYLOAD)
        recovered = ExperimentSpec.from_dict(json.loads(spec.to_json()))
        assert recovered.attack.overrides["trigger.trigger_size"] == 2

    def test_defaults(self):
        spec = ExperimentSpec()
        assert spec.dataset.name == "cora"
        assert spec.model.name == "gcn"
        assert spec.condenser.name == "gcond"
        assert not spec.attack.is_set
        assert not spec.defense.is_set
        assert spec.seed == 0
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown ExperimentSpec keys"):
            ExperimentSpec.from_dict({"datasets": "cora"})

    def test_non_integer_seed_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentSpec.from_dict({"seed": "zero"})

    def test_negative_seed_rejected(self):
        with pytest.raises(ConfigurationError, match="non-negative"):
            ExperimentSpec.from_dict({"seed": -1})
        with pytest.raises(ConfigurationError, match="non-negative"):
            SweepSpec.from_dict({"seed": -1, "axes": {}})
        with pytest.raises(ConfigurationError, match="non-negative"):
            ExperimentSpec().with_axis_value("seed", -3)

    def test_validate_runnable_requires_condenser_name(self):
        spec = ExperimentSpec.from_dict({"condenser": {"overrides": {"epochs": 2}}})
        with pytest.raises(ConfigurationError, match="condenser"):
            spec.validate_runnable()


class TestAxisApplication:
    def test_component_name_axis_preserves_base_overrides(self):
        base = ExperimentSpec.from_dict(
            {"condenser": {"name": "gcond", "overrides": {"epochs": 2}}}
        )
        updated = base.with_axis_value("condenser", "gc-sntk")
        assert updated.condenser.name == "gc-sntk"
        assert updated.condenser.overrides == {"epochs": 2}

    def test_component_mapping_axis_replaces_wholesale(self):
        base = ExperimentSpec.from_dict(
            {"attack": {"name": "bgc", "overrides": {"epochs": 2}}}
        )
        updated = base.with_axis_value("attack", {"name": "naive"})
        assert updated.attack.name == "naive"
        assert updated.attack.overrides == {}

    def test_dot_path_axis_sets_override(self):
        base = ExperimentSpec.from_dict({"attack": "bgc"})
        updated = base.with_axis_value("attack.poison_ratio", 0.05)
        assert updated.attack.overrides == {"poison_ratio": 0.05}

    def test_deep_dot_path_axis(self):
        base = ExperimentSpec.from_dict({"attack": "bgc"})
        updated = base.with_axis_value("attack.trigger.trigger_size", 2)
        assert updated.attack.overrides == {"trigger.trigger_size": 2}

    def test_seed_axis(self):
        assert ExperimentSpec().with_axis_value("seed", 9).seed == 9

    def test_unknown_axis_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown sweep axis"):
            ExperimentSpec().with_axis_value("poison_ratio", 0.1)


class TestSweepSpec:
    def _sweep(self) -> SweepSpec:
        return SweepSpec.from_dict(
            {
                "name": "grid",
                "seed": 5,
                "base": {
                    "dataset": "tiny",
                    "condenser": {"overrides": {"epochs": 2}},
                },
                "axes": {
                    "condenser": ["gcond", "gc-sntk"],
                    "attack.poison_ratio": [0.05, 0.1],
                },
            }
        )

    def test_round_trip(self):
        sweep = self._sweep()
        assert SweepSpec.from_dict(sweep.to_dict()) == sweep
        assert SweepSpec.from_json(sweep.to_json()) == sweep

    def test_cartesian_expansion_order(self):
        cells = self._sweep().expand()
        assert len(cells) == 4
        combos = [
            (spec.condenser.name, spec.attack.overrides["poison_ratio"]) for spec in cells
        ]
        assert combos == [
            ("gcond", 0.05),
            ("gcond", 0.1),
            ("gc-sntk", 0.05),
            ("gc-sntk", 0.1),
        ]

    def test_num_cells(self):
        assert self._sweep().num_cells == 4

    def test_expanded_cells_inherit_base_overrides(self):
        for spec in self._sweep().expand():
            assert spec.condenser.overrides["epochs"] == 2

    def test_per_cell_seeds_are_deterministic_and_distinct(self):
        first = [spec.seed for spec in self._sweep().expand()]
        second = [spec.seed for spec in self._sweep().expand()]
        assert first == second
        assert len(set(first)) == len(first)
        assert first == [derive_cell_seed(5, index) for index in range(4)]

    def test_sweep_seed_changes_cell_seeds(self):
        base = self._sweep()
        other = SweepSpec(base=base.base, axes=base.axes, seed=6, name=base.name)
        assert [s.seed for s in base.expand()] != [s.seed for s in other.expand()]

    def test_explicit_seed_axis_wins(self):
        sweep = SweepSpec.from_dict(
            {
                "base": {"dataset": "tiny"},
                "axes": {"seed": [1, 2, 3]},
            }
        )
        assert [spec.seed for spec in sweep.expand()] == [1, 2, 3]

    def test_empty_axis_rejected(self):
        with pytest.raises(ConfigurationError, match="non-empty list"):
            SweepSpec.from_dict({"axes": {"condenser": []}})

    def test_string_axis_value_rejected(self):
        """list("gcond") must not silently explode into per-character cells."""
        with pytest.raises(ConfigurationError, match="non-empty list"):
            SweepSpec.from_dict({"axes": {"condenser": "gcond"}})

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown SweepSpec keys"):
            SweepSpec.from_dict({"grid": {}})

    def test_no_axes_expands_to_single_cell(self):
        sweep = SweepSpec.from_dict({"base": {"dataset": "tiny"}, "seed": 2})
        cells = sweep.expand()
        assert len(cells) == 1
        assert cells[0].seed == derive_cell_seed(2, 0)


class TestExecutionSpec:
    def test_defaults(self):
        execution = ExecutionSpec()
        assert execution.backend == "serial"
        assert execution.workers == 1
        assert execution.timeout is None
        assert execution.on_error == "raise"

    def test_coerce_shorthands(self):
        assert ExecutionSpec.coerce(None) == ExecutionSpec()
        assert ExecutionSpec.coerce(
            {"backend": "process", "workers": 4}
        ) == ExecutionSpec(backend="process", workers=4)
        existing = ExecutionSpec(backend="process", workers=2)
        assert ExecutionSpec.coerce(existing) is existing

    def test_coerce_rejects_unknown_keys(self):
        with pytest.raises(ConfigurationError, match="unknown execution keys"):
            ExecutionSpec.coerce({"backend": "process", "worker": 4})

    def test_coerce_rejects_wrong_type(self):
        with pytest.raises(ConfigurationError):
            ExecutionSpec.coerce("process")

    def test_invalid_backend_rejected(self):
        with pytest.raises(ConfigurationError, match="backend"):
            ExecutionSpec(backend="threads")

    def test_invalid_on_error_rejected(self):
        with pytest.raises(ConfigurationError, match="on_error"):
            ExecutionSpec(on_error="ignore")

    @pytest.mark.parametrize("workers", [0, -1, 1.5, True, "4"])
    def test_invalid_workers_rejected(self, workers):
        with pytest.raises(ConfigurationError, match="workers"):
            ExecutionSpec(workers=workers)

    @pytest.mark.parametrize(
        "timeout", [0, -2.0, "fast", True, float("nan"), float("inf")]
    )
    def test_invalid_timeout_rejected(self, timeout):
        with pytest.raises(ConfigurationError, match="timeout"):
            ExecutionSpec(timeout=timeout)

    def test_integer_timeout_normalises_to_float(self):
        assert ExecutionSpec(timeout=30).timeout == 30.0

    def test_exact_dict_round_trip(self):
        execution = ExecutionSpec(
            backend="process", workers=4, timeout=120.0, on_error="record"
        )
        assert ExecutionSpec.coerce(execution.to_dict()) == execution

    def test_json_round_trip(self):
        execution = ExecutionSpec(backend="process", workers=2, on_error="record")
        recovered = ExecutionSpec.coerce(json.loads(json.dumps(execution.to_dict())))
        assert recovered == execution

    def test_sweep_round_trips_execution_block(self):
        sweep = SweepSpec.from_dict(
            {
                "base": {"dataset": "tiny"},
                "axes": {"condenser": ["gcond", "gc-sntk"]},
                "execution": {"backend": "process", "workers": 4,
                              "timeout": 60, "on_error": "record"},
            }
        )
        assert sweep.execution == ExecutionSpec(
            backend="process", workers=4, timeout=60.0, on_error="record"
        )
        assert SweepSpec.from_dict(sweep.to_dict()) == sweep
        assert SweepSpec.from_json(sweep.to_json()) == sweep
        assert sweep.to_dict()["execution"]["backend"] == "process"

    def test_sweep_without_execution_gets_defaults(self):
        sweep = SweepSpec.from_dict({"base": {"dataset": "tiny"}, "axes": {}})
        assert sweep.execution == ExecutionSpec()
        assert "execution" in sweep.to_dict()

    def test_execution_never_changes_expansion(self):
        """Execution settings are orthogonal to what the grid computes."""
        payload = {
            "seed": 5,
            "base": {"dataset": "tiny"},
            "axes": {"condenser": ["gcond", "gc-sntk"]},
        }
        serial = SweepSpec.from_dict(payload)
        parallel = SweepSpec.from_dict(
            {**payload, "execution": {"backend": "process", "workers": 8}}
        )
        assert [spec.to_dict() for spec in serial.expand()] == [
            spec.to_dict() for spec in parallel.expand()
        ]
