"""Equivalence tests pinning every attack-loop fast path to its slow reference.

Each fast path is pinned here to the reference implementation it replaced,
at ``atol=1e-10``:

* ``batched_local_trigger_loss`` vs the per-node ``local_trigger_loss`` —
  same loss *and* same parameter gradients;
* CSR-surgery ``attach_trigger_subgraph`` vs the COO-rebuild reference —
  identical sparse matrices (indptr / indices / data);
* ``incremental_gcn_normalize`` (and its ``PropagationCache`` integration)
  vs a full ``gcn_normalize`` — under single-row and multi-row deltas;
* the zero-copy :class:`~repro.graph.view.GraphView` path (stacked-block
  features, difference-form propagation) vs the materialised
  ``GraphData.with_delta`` path — same condensation metrics *and* same
  synthetic-graph gradients, for the gradient-matching and GC-SNTK
  condensers and for a full BGC run.
"""

from __future__ import annotations

import gc
import os
import pickle

import numpy as np
import pytest
import scipy.sparse as sp

from repro.attack.trigger import (
    TriggerConfig,
    TriggerGenerator,
    UniversalTriggerGenerator,
    batched_local_trigger_loss,
    local_trigger_loss,
)
from repro.autograd import Tensor
from repro.condensation.gradient_matching import all_class_model_gradients
from repro.exceptions import GraphValidationError
from repro.graph.blocked import (
    BlockedArray,
    blocked_precompute_hops,
    blocked_spmm,
    set_blocked_threshold,
)
from repro.graph.cache import PropagationCache
from repro.graph.data import GraphData
from repro.graph.generators import stochastic_block_model
from repro.graph.normalize import (
    gcn_normalize,
    incremental_gcn_normalize,
    self_loop_degrees,
)
from repro.graph.propagation import sgc_precompute, sgc_precompute_hops
from repro.graph.subgraph import attach_trigger_subgraph, attach_trigger_subgraph_coo
from repro.graph.view import PropagatedView
from repro.utils.seed import new_rng

ATOL = 1e-10


def sparse_max_abs_diff(a: sp.spmatrix, b: sp.spmatrix) -> float:
    diff = (a - b).tocsr()
    return float(np.abs(diff.data).max()) if diff.nnz else 0.0


# --------------------------------------------------------------------- #
# Batched vs per-node trigger loss
# --------------------------------------------------------------------- #
class TestBatchedTriggerLossEquivalence:
    def _reference(self, nodes, graph, inputs, generator, weight, **kwargs):
        total = None
        for node in nodes:
            loss = local_trigger_loss(
                int(node), graph, inputs, generator, weight, **kwargs
            )
            total = loss if total is None else total + loss
        return total * (1.0 / len(nodes))

    @pytest.mark.parametrize("generator_cls", [TriggerGenerator, UniversalTriggerGenerator])
    @pytest.mark.parametrize("max_neighbors", [2, 10])
    def test_loss_and_gradients_match(self, small_graph, generator_cls, max_neighbors):
        generator = generator_cls(
            small_graph.num_features, new_rng(0), TriggerConfig(trigger_size=3, hidden=16)
        )
        generator.calibrate(small_graph.features)
        inputs = generator.encode_inputs(small_graph.adjacency, small_graph.features)
        weight = Tensor(
            new_rng(1).normal(size=(small_graph.num_features, small_graph.num_classes))
        )
        nodes = np.array([0, 5, 17, 40, 88])
        kwargs = dict(target_class=1, max_neighbors=max_neighbors, num_hops=2)

        for parameter in generator.parameters():
            parameter.zero_grad()
        reference = self._reference(nodes, small_graph, inputs, generator, weight, **kwargs)
        reference.backward()
        reference_grads = [p.grad.copy() for p in generator.parameters()]

        for parameter in generator.parameters():
            parameter.zero_grad()
        batched = batched_local_trigger_loss(
            nodes, small_graph, inputs, generator, weight, **kwargs
        )
        batched.backward()

        assert abs(batched.item() - reference.item()) <= ATOL
        for reference_grad, parameter in zip(reference_grads, generator.parameters()):
            assert parameter.grad is not None
            np.testing.assert_allclose(parameter.grad, reference_grad, atol=ATOL)

    @pytest.mark.parametrize("encoder", ["mlp", "gcn", "transformer"])
    def test_all_encoders_match(self, small_graph, encoder):
        generator = TriggerGenerator(
            small_graph.num_features,
            new_rng(2),
            TriggerConfig(trigger_size=2, hidden=16, encoder=encoder),
        )
        generator.calibrate(small_graph.features)
        inputs = generator.encode_inputs(small_graph.adjacency, small_graph.features)
        weight = Tensor(
            new_rng(3).normal(size=(small_graph.num_features, small_graph.num_classes))
        )
        nodes = np.array([1, 2, 30])
        kwargs = dict(target_class=0, max_neighbors=4, num_hops=2)
        reference = self._reference(nodes, small_graph, inputs, generator, weight, **kwargs)
        batched = batched_local_trigger_loss(
            nodes, small_graph, inputs, generator, weight, **kwargs
        )
        assert abs(batched.item() - reference.item()) <= ATOL

    def test_isolated_node_in_batch(self, small_graph):
        adjacency = small_graph.adjacency.tolil()
        adjacency[0, :] = 0
        adjacency[:, 0] = 0
        isolated = small_graph.with_(adjacency=sp.csr_matrix(adjacency))
        generator = TriggerGenerator(
            isolated.num_features, new_rng(4), TriggerConfig(trigger_size=2, hidden=16)
        )
        inputs = generator.encode_inputs(isolated.adjacency, isolated.features)
        weight = Tensor(
            new_rng(5).normal(size=(isolated.num_features, isolated.num_classes))
        )
        nodes = np.array([0, 7, 20])  # node 0 is isolated -> blocks of mixed size
        kwargs = dict(target_class=0, max_neighbors=10, num_hops=2)
        reference = self._reference(nodes, isolated, inputs, generator, weight, **kwargs)
        batched = batched_local_trigger_loss(
            nodes, isolated, inputs, generator, weight, **kwargs
        )
        assert abs(batched.item() - reference.item()) <= ATOL

    def test_single_node_batch_matches_reference(self, small_graph):
        generator = TriggerGenerator(
            small_graph.num_features, new_rng(6), TriggerConfig(trigger_size=2, hidden=16)
        )
        inputs = generator.encode_inputs(small_graph.adjacency, small_graph.features)
        weight = Tensor(
            new_rng(7).normal(size=(small_graph.num_features, small_graph.num_classes))
        )
        kwargs = dict(target_class=2, max_neighbors=10, num_hops=2)
        reference = local_trigger_loss(
            3, small_graph, inputs, generator, weight, **kwargs
        )
        batched = batched_local_trigger_loss(
            np.array([3]), small_graph, inputs, generator, weight, **kwargs
        )
        assert abs(batched.item() - reference.item()) <= ATOL


# --------------------------------------------------------------------- #
# CSR surgery vs COO rebuild
# --------------------------------------------------------------------- #
class TestAttachmentEquivalence:
    @pytest.mark.parametrize("seed", range(10))
    def test_identical_sparse_matrices(self, seed):
        rng = new_rng(seed)
        adjacency = stochastic_block_model(
            rng.integers(6, 25, size=3), p_in=0.3, p_out=0.05, rng=rng
        )
        n = adjacency.shape[0]
        num_features = int(rng.integers(3, 9))
        features = rng.normal(size=(n, num_features))
        num_targets = int(rng.integers(1, 6))
        trigger_size = int(rng.integers(1, 5))
        targets = rng.integers(0, n, size=num_targets)  # duplicates allowed
        trigger_features = rng.normal(size=(num_targets, trigger_size, num_features))
        trigger_adjacency = (
            rng.random((num_targets, trigger_size, trigger_size)) < 0.4
        ).astype(np.float64)

        fast_adj, fast_feat, fast_map = attach_trigger_subgraph(
            adjacency, features, targets, trigger_features, trigger_adjacency
        )
        slow_adj, slow_feat, slow_map = attach_trigger_subgraph_coo(
            adjacency, features, targets, trigger_features, trigger_adjacency
        )
        np.testing.assert_array_equal(
            fast_adj.indptr.astype(np.int64), slow_adj.indptr.astype(np.int64)
        )
        np.testing.assert_array_equal(
            fast_adj.indices.astype(np.int64), slow_adj.indices.astype(np.int64)
        )
        np.testing.assert_array_equal(fast_adj.data, slow_adj.data)
        np.testing.assert_array_equal(fast_feat, slow_feat)
        np.testing.assert_array_equal(fast_map, slow_map)

    def test_weighted_host_edges_preserved_identically(self):
        """Host weights survive attachment (clamping them would silently
        rewrite rows outside any recorded delta)."""
        adjacency = sp.csr_matrix(np.array([[0.0, 2.5], [2.5, 0.0]]))
        features = np.ones((2, 3))
        trigger_features = np.ones((1, 2, 3))
        trigger_adjacency = np.ones((1, 2, 2))
        fast_adj, _, _ = attach_trigger_subgraph(
            adjacency, features, np.array([0]), trigger_features, trigger_adjacency
        )
        slow_adj, _, _ = attach_trigger_subgraph_coo(
            adjacency, features, np.array([0]), trigger_features, trigger_adjacency
        )
        assert (fast_adj != slow_adj).nnz == 0
        assert fast_adj[0, 1] == 2.5 and fast_adj[1, 0] == 2.5

    def test_weighted_host_keeps_delta_contract_through_cache(self):
        """End-to-end: attaching triggers to a *weighted* host graph must not
        perturb unchanged rows, so cached incremental propagation and
        renormalisation stay exact against full recomputes."""
        from repro.graph.propagation import sgc_precompute
        from repro.graph.splits import SplitIndices

        rng = new_rng(31)
        adjacency = stochastic_block_model(
            np.array([15, 15]), p_in=0.3, p_out=0.05, rng=rng
        ).tolil()
        adjacency[2, 3] = 3.0  # weighted edge between two non-target nodes
        adjacency[3, 2] = 3.0
        adjacency = sp.csr_matrix(adjacency)
        n = adjacency.shape[0]
        graph = GraphData(
            adjacency=adjacency,
            features=rng.normal(size=(n, 6)),
            labels=np.zeros(n, dtype=np.int64),
            split=SplitIndices(
                train=np.arange(n), val=np.zeros(0, np.int64), test=np.zeros(0, np.int64)
            ),
        )
        cache = PropagationCache()
        cache.propagated(graph, 2)  # resident base chain + operator
        targets = np.array([10, 20])
        new_adj, new_feat, _ = attach_trigger_subgraph(
            graph.adjacency, graph.features, targets,
            rng.normal(size=(2, 2, 6)), np.ones((2, 2, 2)),
        )
        poisoned = graph.with_delta(
            targets,
            adjacency=new_adj,
            features=new_feat,
            labels=np.zeros(new_adj.shape[0], dtype=np.int64),
        )
        assert (
            sparse_max_abs_diff(cache.normalized(poisoned), gcn_normalize(new_adj))
            <= ATOL
        )
        np.testing.assert_allclose(
            cache.propagated(poisoned, 2), sgc_precompute(new_adj, new_feat, 2), atol=ATOL
        )


# --------------------------------------------------------------------- #
# Incremental vs full gcn_normalize
# --------------------------------------------------------------------- #
def _random_graph(seed: int) -> sp.csr_matrix:
    rng = new_rng(seed)
    return stochastic_block_model(
        rng.integers(10, 30, size=3), p_in=0.3, p_out=0.05, rng=rng
    )


class TestIncrementalNormalizeEquivalence:
    @pytest.mark.parametrize("seed", range(5))
    def test_single_row_delta(self, seed):
        adjacency = _random_graph(seed)
        n = adjacency.shape[0]
        base_normalized = gcn_normalize(adjacency)
        base_degrees = self_loop_degrees(adjacency)
        # Flip one edge (i, j): exactly the rows {i, j} change.
        rng = new_rng(seed + 100)
        i, j = 0, int(rng.integers(1, n))
        lil = adjacency.tolil()
        value = 0.0 if lil[i, j] else 1.0
        lil[i, j] = value
        lil[j, i] = value
        derived = sp.csr_matrix(lil)
        incremental, degrees = incremental_gcn_normalize(
            derived, base_normalized, base_degrees, np.array([i, j])
        )
        full = gcn_normalize(derived)
        assert sparse_max_abs_diff(incremental, full) <= ATOL
        np.testing.assert_allclose(degrees, self_loop_degrees(derived), atol=ATOL)

    @pytest.mark.parametrize("seed", range(5))
    def test_multi_row_delta_with_appended_rows(self, seed):
        adjacency = _random_graph(seed)
        n = adjacency.shape[0]
        rng = new_rng(seed + 200)
        features = rng.normal(size=(n, 4))
        targets = np.unique(rng.integers(0, n, size=4))
        trigger_features = rng.normal(size=(targets.size, 3, 4))
        trigger_adjacency = (rng.random((targets.size, 3, 3)) < 0.5).astype(np.float64)
        derived, _, _ = attach_trigger_subgraph(
            adjacency, features, targets, trigger_features, trigger_adjacency
        )
        incremental, degrees = incremental_gcn_normalize(
            derived, gcn_normalize(adjacency), self_loop_degrees(adjacency), targets
        )
        full = gcn_normalize(derived)
        assert sparse_max_abs_diff(incremental, full) <= ATOL
        np.testing.assert_allclose(degrees, self_loop_degrees(derived), atol=ATOL)

    def test_nonpositive_degree_rows_match_full_recompute(self):
        """Negative edge weights can drive a self-loop degree to zero.

        ``gcn_normalize`` zeroes such rows instead of emitting NaNs; the
        incremental path must do the same — both when a changed row's *new*
        degree collapses and when a collapsed base row's degree recovers.
        """
        adjacency = sp.csr_matrix(
            np.array([[0.0, 1.0, 0.0], [1.0, 0.0, 1.0], [0.0, 1.0, 0.0]])
        )
        base_normalized = gcn_normalize(adjacency)
        base_degrees = self_loop_degrees(adjacency)
        collapsed = adjacency.tolil()
        collapsed[0, 1] = -1.0  # self-loop-inclusive degree of row 0 becomes 0
        collapsed[1, 0] = -1.0
        collapsed = sp.csr_matrix(collapsed)
        incremental, degrees = incremental_gcn_normalize(
            collapsed, base_normalized, base_degrees, np.array([0, 1])
        )
        full = gcn_normalize(collapsed)
        assert np.all(np.isfinite(incremental.data))
        assert sparse_max_abs_diff(incremental, full) <= ATOL
        # And the reverse delta: the collapsed row recovers a positive degree.
        recovered, degrees_back = incremental_gcn_normalize(
            adjacency, incremental, degrees, np.array([0, 1])
        )
        assert sparse_max_abs_diff(recovered, base_normalized) <= ATOL
        np.testing.assert_allclose(degrees_back, base_degrees, atol=ATOL)

    def test_degree_recovery_resurrects_unchanged_neighbor_entries(self):
        """A recovered column must reappear in *unchanged* adjacent rows.

        Base: node 1 has self-loop degree 0 (negative weight on edge (1, 2)),
        so column 1 of the base operator is all zeros — including in row 0,
        which the delta does not touch.  Removing edge (1, 2) recovers node
        1's degree; the fix-up cannot rescale a missing entry, so row 0 must
        be folded into the full-recompute set.
        """
        base = sp.csr_matrix(
            np.array([[0.0, 1.0, 0.0], [1.0, 0.0, -2.0], [0.0, -2.0, 0.0]])
        )
        base_normalized = gcn_normalize(base)
        base_degrees = self_loop_degrees(base)
        derived = sp.csr_matrix(
            np.array([[0.0, 1.0, 0.0], [1.0, 0.0, 0.0], [0.0, 0.0, 0.0]])
        )
        # Per the GraphDelta contract row 0's incident edges are unchanged,
        # so only rows 1 and 2 are listed.
        incremental, degrees = incremental_gcn_normalize(
            derived, base_normalized, base_degrees, np.array([1, 2])
        )
        full = gcn_normalize(derived)
        assert sparse_max_abs_diff(incremental, full) <= ATOL
        np.testing.assert_allclose(degrees, self_loop_degrees(derived), atol=ATOL)
        assert abs(incremental[0, 1] - 0.5) <= ATOL  # the resurrected entry

    def test_cache_uses_incremental_path_and_stays_exact(self, small_graph):
        cache = PropagationCache()
        cache.normalized(small_graph)  # residence for the base operator
        rng = new_rng(9)
        targets = np.array([3, 40, 77])
        trigger_features = rng.normal(size=(3, 2, small_graph.num_features))
        trigger_adjacency = np.ones((3, 2, 2))
        new_adj, new_feat, _ = attach_trigger_subgraph(
            small_graph.adjacency, small_graph.features, targets,
            trigger_features, trigger_adjacency,
        )
        labels = np.concatenate([small_graph.labels, np.zeros(6, dtype=np.int64)])
        poisoned = small_graph.with_delta(
            targets, adjacency=new_adj, features=new_feat, labels=labels
        )
        normalized = cache.normalized(poisoned)
        assert cache.stats()["incremental_normalizations"] == 1
        assert sparse_max_abs_diff(normalized, gcn_normalize(new_adj)) <= ATOL
        # And the propagated features stay exact on top of it.
        from repro.graph.propagation import sgc_precompute

        propagated = cache.propagated(poisoned, 2)
        np.testing.assert_allclose(
            propagated, sgc_precompute(new_adj, new_feat, 2), atol=ATOL
        )

    def test_metadata_variant_shares_base_operator(self, small_graph):
        cache = PropagationCache()
        base_normalized = cache.normalized(small_graph)
        variant = small_graph.with_(labels=small_graph.labels.copy())
        assert cache.normalized(variant) is base_normalized
        assert cache.stats()["incremental_normalizations"] == 0


# --------------------------------------------------------------------- #
# Zero-copy GraphView vs materialised poisoned GraphData
# --------------------------------------------------------------------- #
def _poisoned_pair(graph, seed: int, num_targets: int = 3, trigger_size: int = 2):
    """A (view, materialised) pair of identical poisoned-graph content."""
    from repro.graph.view import poison_graph_view

    rng = new_rng(seed)
    targets = np.sort(rng.choice(graph.num_nodes, size=num_targets, replace=False))
    trigger_features = rng.normal(size=(num_targets, trigger_size, graph.num_features))
    trigger_adjacency = (
        rng.random((num_targets, trigger_size, trigger_size)) < 0.5
    ).astype(np.float64)
    view = poison_graph_view(graph, targets, trigger_features, trigger_adjacency)
    new_adj, new_feat, _ = attach_trigger_subgraph(
        graph.adjacency, graph.features, targets, trigger_features, trigger_adjacency
    )
    materialised = graph.with_delta(
        targets,
        adjacency=new_adj,
        features=new_feat,
        labels=view.labels.copy(),
    )
    return view, materialised


class TestGraphViewEquivalence:
    def test_view_content_is_identical(self, small_graph):
        view, materialised = _poisoned_pair(small_graph, seed=41)
        np.testing.assert_array_equal(
            view.adjacency.indptr.astype(np.int64),
            materialised.adjacency.indptr.astype(np.int64),
        )
        np.testing.assert_array_equal(
            view.adjacency.indices.astype(np.int64),
            materialised.adjacency.indices.astype(np.int64),
        )
        np.testing.assert_array_equal(view.adjacency.data, materialised.adjacency.data)
        np.testing.assert_array_equal(
            view.features.materialize(), materialised.features
        )

    def test_propagated_rows_bit_identical(self, small_graph):
        """The difference-form product gathers the exact same floats the
        materialised incremental product holds (same kernel, same inputs)."""
        view, materialised = _poisoned_pair(small_graph, seed=42)
        view_cache, mat_cache = PropagationCache(), PropagationCache()
        lazy = view_cache.propagated_view(view, 2)
        full = mat_cache.propagated(materialised, 2)
        rows = np.arange(view.num_nodes)
        np.testing.assert_array_equal(lazy.gather(rows), full)

    @pytest.mark.parametrize("condenser_name", ["gcond-x", "gcond", "gc-sntk"])
    def test_epoch_step_metrics_and_gradients_match(self, small_graph, condenser_name):
        """One condensation epoch on the view == one on the materialised graph.

        Compares the matching loss, the synthetic features after the update
        (i.e. the applied gradient) and the surrogate weight, at atol 1e-10.
        """
        from repro.condensation import make_condenser
        from repro.condensation.base import CondensationConfig

        results = []
        for variant in range(2):
            condenser = make_condenser(
                condenser_name, CondensationConfig(epochs=1, ratio=0.2)
            )
            condenser._cache = PropagationCache()
            condenser.initialize(small_graph, new_rng(5))
            view, materialised = _poisoned_pair(small_graph, seed=43)
            poisoned = view if variant == 0 else materialised
            loss = condenser.epoch_step(poisoned)
            results.append((loss, condenser.synthetic().features))
        (view_loss, view_features), (mat_loss, mat_features) = results
        assert abs(view_loss - mat_loss) <= ATOL
        np.testing.assert_allclose(view_features, mat_features, rtol=0.0, atol=ATOL)

    def test_bgc_view_flag_is_bit_identical(self, small_graph):
        """BGC with use_graph_view on/off: same history, same condensed graph."""
        from repro.attack.bgc import BGC, BGCConfig
        from repro.attack.trigger import TriggerConfig
        from repro.condensation.base import CondensationConfig
        from repro.condensation.gcond import GCondX

        def run(use_view: bool):
            attack = BGC(
                BGCConfig(
                    poison_number=3,
                    epochs=2,
                    use_graph_view=use_view,
                    trigger=TriggerConfig(trigger_size=2, hidden=16),
                )
            )
            condenser = GCondX(
                CondensationConfig(epochs=1, ratio=0.2), cache=PropagationCache()
            )
            return attack.run(small_graph, condenser, new_rng(13))

        with_view, without_view = run(True), run(False)
        assert with_view.history == without_view.history
        np.testing.assert_array_equal(
            with_view.condensed.features, without_view.condensed.features
        )
        np.testing.assert_array_equal(
            with_view.poisoned_nodes, without_view.poisoned_nodes
        )


# --------------------------------------------------------------------- #
# Blocked (out-of-core) propagation vs the dense reference
# --------------------------------------------------------------------- #
@pytest.fixture
def force_blocked():
    """Route every hop chain through the blocked engine for one test."""
    previous = set_blocked_threshold(0)
    yield
    set_blocked_threshold(previous)


def _poison_with_delta(graph, seed: int, num_targets: int = 3, trigger_size: int = 2):
    """A poisoned derived graph (GraphDelta) plus its raw (adj, feat) pair."""
    rng = new_rng(seed)
    targets = np.sort(rng.choice(graph.num_nodes, size=num_targets, replace=False))
    trigger_features = rng.normal(size=(num_targets, trigger_size, graph.num_features))
    trigger_adjacency = (
        rng.random((num_targets, trigger_size, trigger_size)) < 0.5
    ).astype(np.float64)
    new_adj, new_feat, _ = attach_trigger_subgraph(
        graph.adjacency, graph.features, targets, trigger_features, trigger_adjacency
    )
    labels = np.concatenate(
        [graph.labels, np.zeros(new_adj.shape[0] - graph.num_nodes, dtype=np.int64)]
    )
    poisoned = graph.with_delta(
        targets, adjacency=new_adj, features=new_feat, labels=labels
    )
    return poisoned, new_adj, new_feat


class TestBlockedPropagationEquivalence:
    @pytest.mark.parametrize("row_block,col_block", [(7, 3), (16, 256), (1024, 2)])
    def test_blocked_spmm_matches_dense_at_any_tiling(self, row_block, col_block):
        rng = new_rng(51)
        adjacency = stochastic_block_model(
            np.array([20, 20, 20]), p_in=0.3, p_out=0.05, rng=rng
        )
        normalized = gcn_normalize(adjacency)
        features = rng.normal(size=(60, 11))
        dense = normalized @ features
        blocked = blocked_spmm(
            normalized, features, row_block=row_block, col_block=col_block
        )
        assert isinstance(blocked, BlockedArray)
        np.testing.assert_allclose(blocked.materialize(), dense, rtol=0.0, atol=ATOL)
        if row_block >= 60:
            # Single row block: identical summation order => bit-identical.
            np.testing.assert_array_equal(blocked.materialize(), dense)

    def test_single_block_chain_is_bit_identical(self, small_graph):
        normalized = gcn_normalize(small_graph.adjacency)
        dense = sgc_precompute_hops(normalized, small_graph.features, 3)
        blocked = blocked_precompute_hops(
            normalized, small_graph.features, 3, row_block=small_graph.num_nodes
        )
        assert blocked[0] is not None and not isinstance(blocked[0], BlockedArray)
        for dense_hop, blocked_hop in zip(dense[1:], blocked[1:]):
            assert isinstance(blocked_hop, BlockedArray)
            np.testing.assert_array_equal(blocked_hop.materialize(), dense_hop)

    def test_multi_block_chain_matches_to_tolerance(self, small_graph):
        normalized = gcn_normalize(small_graph.adjacency)
        dense = sgc_precompute_hops(normalized, small_graph.features, 3)
        blocked = blocked_precompute_hops(
            normalized, small_graph.features, 3, row_block=13, col_block=5
        )
        for dense_hop, blocked_hop in zip(dense[1:], blocked[1:]):
            np.testing.assert_allclose(
                blocked_hop.materialize(), dense_hop, rtol=0.0, atol=ATOL
            )

    def test_cache_routes_above_threshold_and_stays_exact(
        self, small_graph, force_blocked
    ):
        cache = PropagationCache()
        product = cache.propagated(small_graph, 2)
        assert isinstance(product, BlockedArray)
        reference = sgc_precompute(
            small_graph.adjacency, small_graph.features, 2
        )
        # Default row tile (8192) >= 90 nodes: one block, bit-identical.
        np.testing.assert_array_equal(product.materialize(), reference)
        assert cache.propagated(small_graph, 2) is product  # plain cache hit

    def test_dense_path_still_used_below_threshold(self, small_graph):
        previous = set_blocked_threshold(10**9)
        try:
            cache = PropagationCache()
            product = cache.propagated(small_graph, 2)
            assert isinstance(product, np.ndarray)
        finally:
            set_blocked_threshold(previous)

    def test_incremental_delta_patches_against_blocked_base(
        self, small_graph, force_blocked
    ):
        cache = PropagationCache()
        cache.propagated(small_graph, 2)  # resident blocked base chain
        poisoned, new_adj, new_feat = _poison_with_delta(small_graph, seed=61)
        result = cache.propagated(poisoned, 2)
        assert cache.stats()["incremental_updates"] == 1
        np.testing.assert_allclose(
            np.asarray(result), sgc_precompute(new_adj, new_feat, 2), rtol=0.0, atol=ATOL
        )

    def test_propagated_view_difference_form_over_blocked_base(
        self, small_graph, force_blocked
    ):
        cache = PropagationCache()
        cache.propagated(small_graph, 2)
        poisoned, new_adj, new_feat = _poison_with_delta(small_graph, seed=62)
        view = cache.propagated_view(poisoned, 2)
        assert isinstance(view, PropagatedView)
        assert isinstance(view.base_product, BlockedArray)
        reference = sgc_precompute(new_adj, new_feat, 2)
        rows = np.arange(poisoned.num_nodes)
        np.testing.assert_allclose(view.gather(rows), reference, rtol=0.0, atol=ATOL)

    @pytest.mark.parametrize("block_size", [90, 13])
    def test_blocked_class_gradients_match_dense(self, small_graph, block_size):
        normalized = gcn_normalize(small_graph.adjacency)
        blocked = blocked_spmm(
            normalized, small_graph.features, row_block=block_size
        )
        dense = np.asarray(normalized @ small_graph.features)
        rng = new_rng(63)
        weight = rng.normal(size=(small_graph.num_features, small_graph.num_classes))
        index = small_graph.split.train
        dense_grads = all_class_model_gradients(
            dense, small_graph.labels, weight, index, small_graph.num_classes
        )
        blocked_grads = all_class_model_gradients(
            blocked, small_graph.labels, weight, index, small_graph.num_classes
        )
        assert set(dense_grads) == set(blocked_grads)
        for cls, gradient in dense_grads.items():
            if block_size >= small_graph.num_nodes:
                np.testing.assert_array_equal(blocked_grads[cls], gradient)
            else:
                np.testing.assert_allclose(
                    blocked_grads[cls], gradient, rtol=0.0, atol=ATOL
                )

    def test_threshold_override_validation(self):
        with pytest.raises(GraphValidationError):
            set_blocked_threshold(-1)
        with pytest.raises(GraphValidationError):
            set_blocked_threshold(True)
        previous = set_blocked_threshold(123)
        try:
            assert set_blocked_threshold(previous) == 123
        finally:
            set_blocked_threshold(previous)


class TestBlockedStoreProperties:
    def test_write_rows_spanning_block_boundaries(self):
        rng = new_rng(71)
        mirror = np.zeros((50, 4))
        store = BlockedArray((50, 4), block_size=8)
        # Writes chosen to start mid-block and cross one or more boundaries.
        for start, count in [(0, 3), (5, 10), (14, 20), (47, 3), (20, 0)]:
            values = rng.normal(size=(count, 4))
            store.write_rows(start, values)
            mirror[start : start + count] = values
        np.testing.assert_array_equal(store.materialize(), mirror)
        with pytest.raises(GraphValidationError):
            store.write_rows(48, np.zeros((3, 4)))  # past the last row
        with pytest.raises(GraphValidationError):
            store.write_rows(0, np.zeros((2, 5)))  # wrong width

    def test_gather_and_getitem_mirror_ndarray_semantics(self):
        rng = new_rng(72)
        dense = rng.normal(size=(30, 6))
        store = BlockedArray((30, 6), block_size=7)
        store.write_rows(0, dense)
        rows = np.array([29, 0, 13, 13, 6])  # unsorted, duplicated, cross-block
        np.testing.assert_array_equal(store.gather(rows), dense[rows])
        mask = dense[:, 0] > 0.0
        np.testing.assert_array_equal(store.gather(mask), dense[mask])
        np.testing.assert_array_equal(store[rows, 1:4], dense[rows, 1:4])
        np.testing.assert_array_equal(store[5:20:3], dense[5:20:3])
        np.testing.assert_array_equal(store[np.array([-1, -30])], dense[[-1, -30]])
        np.testing.assert_array_equal(store[4], dense[4])
        np.testing.assert_array_equal(np.asarray(store), dense)
        with pytest.raises(IndexError):
            store.gather(np.array([30]))

    def test_std_matches_numpy(self):
        rng = new_rng(73)
        dense = rng.normal(size=(40, 3))
        single = BlockedArray((40, 3), block_size=64)
        single.write_rows(0, dense)
        assert single.std() == np.std(dense)  # single block: bit-identical
        multi = BlockedArray((40, 3), block_size=9)
        multi.write_rows(0, dense)
        assert abs(multi.std() - np.std(dense)) <= ATOL

    def test_pickle_round_trip_never_deletes_the_owners_files(self):
        rng = new_rng(74)
        dense = rng.normal(size=(20, 5))
        store = BlockedArray((20, 5), block_size=6)
        store.write_rows(0, dense)
        copy = pickle.loads(pickle.dumps(store))
        np.testing.assert_array_equal(copy.materialize(), dense)
        directory = store.directory
        del copy
        gc.collect()
        # The unpickled replica is not the owner: the files must survive it.
        assert os.path.isdir(directory)
        np.testing.assert_array_equal(store.materialize(), dense)

    def test_warm_start_round_trip_with_blocked_chains(
        self, small_graph, force_blocked
    ):
        exporter = PropagationCache()
        reference = exporter.propagated(small_graph, 2).materialize()
        payload = pickle.loads(pickle.dumps(exporter.export_base_chains(small_graph)))
        assert any(isinstance(hop, BlockedArray) for hop in payload["hops"].values())
        receiver = PropagationCache()
        receiver.warm_start(small_graph, payload)
        served = receiver.propagated(small_graph, 2)
        assert receiver.stats()["hits"] == 1 and receiver.stats()["misses"] == 0
        np.testing.assert_array_equal(np.asarray(served), reference)

    def test_block_files_cleaned_up_on_cache_eviction(self, force_blocked):
        from repro.graph.splits import SplitIndices

        cache = PropagationCache(max_graphs=2, max_shards=1)
        empty = np.zeros(0, dtype=np.int64)
        graphs = [
            GraphData(
                adjacency=stochastic_block_model(
                    np.array([10, 10]), p_in=0.4, p_out=0.1, rng=new_rng(80 + i)
                ),
                features=new_rng(90 + i).normal(size=(20, 4)),
                labels=np.zeros(20, dtype=np.int64),
                split=SplitIndices(train=np.arange(20), val=empty, test=empty),
            )
            for i in range(2)
        ]
        directory = cache.propagated(graphs[0], 1).directory
        assert os.path.isdir(directory)
        # A second root graph opens a new shard; max_shards=1 evicts the
        # first shard whole, retiring its entry and dropping the last
        # reference to the blocked product.
        cache.propagated(graphs[1], 1)
        gc.collect()
        assert not os.path.exists(directory)

    def test_scratch_dir_honours_configured_cache_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BLOCKED_DIR", str(tmp_path / "blocked-cache"))
        store = BlockedArray((10, 3), block_size=4)
        assert store.directory.startswith(str(tmp_path / "blocked-cache"))
        assert os.path.isdir(store.directory)
        directory = store.directory
        del store
        gc.collect()
        assert not os.path.exists(directory)


class TestBlockedThresholdResolution:
    """The threshold sits on every chain build: memoised, still env-driven."""

    def test_same_raw_string_parses_once(self, monkeypatch):
        from repro.graph import blocked

        parses = []
        original = blocked._parse_threshold_env
        monkeypatch.setattr(
            blocked,
            "_parse_threshold_env",
            lambda raw: (parses.append(raw), original(raw))[1],
        )
        monkeypatch.setenv("REPRO_BLOCKED_THRESHOLD", "424242")
        set_blocked_threshold(None)  # drop any stale memo from other tests
        for _ in range(5):
            assert blocked.blocked_threshold() == 424242
        assert parses == ["424242"]

    def test_environment_change_invalidates_the_memo(self, monkeypatch):
        from repro.graph.blocked import DEFAULT_BLOCKED_THRESHOLD, blocked_threshold

        set_blocked_threshold(None)
        monkeypatch.setenv("REPRO_BLOCKED_THRESHOLD", "111")
        assert blocked_threshold() == 111
        monkeypatch.setenv("REPRO_BLOCKED_THRESHOLD", "222")
        assert blocked_threshold() == 222
        monkeypatch.delenv("REPRO_BLOCKED_THRESHOLD")
        assert blocked_threshold() == DEFAULT_BLOCKED_THRESHOLD

    def test_malformed_environment_raises_actionable_error(self, monkeypatch):
        from repro.graph.blocked import blocked_threshold

        set_blocked_threshold(None)
        monkeypatch.setenv("REPRO_BLOCKED_THRESHOLD", "banana")
        with pytest.raises(GraphValidationError, match="must be an integer"):
            blocked_threshold()
        monkeypatch.setenv("REPRO_BLOCKED_THRESHOLD", "-5")
        with pytest.raises(GraphValidationError, match=">= 0"):
            blocked_threshold()

    def test_override_wins_and_clears_back_to_env(self, monkeypatch):
        from repro.graph.blocked import blocked_threshold

        monkeypatch.setenv("REPRO_BLOCKED_THRESHOLD", "777")
        previous = set_blocked_threshold(0)
        try:
            # Even a malformed env is irrelevant while the override is pinned.
            monkeypatch.setenv("REPRO_BLOCKED_THRESHOLD", "banana")
            assert blocked_threshold() == 0
        finally:
            set_blocked_threshold(previous)
        monkeypatch.setenv("REPRO_BLOCKED_THRESHOLD", "888")
        assert blocked_threshold() == 888
