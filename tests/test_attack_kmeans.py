"""Unit and property tests for the K-Means implementation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.attack.kmeans import KMeans
from repro.exceptions import AttackError
from repro.utils.seed import new_rng


def well_separated_blobs(rng, per_cluster=20, dims=2):
    centers = np.array([[0.0] * dims, [10.0] * dims, [-10.0] + [10.0] * (dims - 1)])
    points = np.vstack([
        center + rng.normal(scale=0.3, size=(per_cluster, dims)) for center in centers
    ])
    truth = np.repeat(np.arange(3), per_cluster)
    return points, truth


class TestKMeans:
    def test_recovers_well_separated_clusters(self, rng):
        points, truth = well_separated_blobs(rng)
        model = KMeans(num_clusters=3).fit(points, rng)
        # Cluster labels are permutation-invariant: check purity instead.
        purity = 0
        for k in range(3):
            members = truth[model.assignments == k]
            if members.size:
                purity += np.bincount(members).max()
        assert purity / points.shape[0] > 0.95

    def test_inertia_is_low_for_tight_clusters(self, rng):
        points, _ = well_separated_blobs(rng)
        model = KMeans(num_clusters=3).fit(points, rng)
        assert model.inertia < points.shape[0] * 1.0

    def test_more_clusters_never_increase_inertia(self, rng):
        points, _ = well_separated_blobs(rng)
        inertia_2 = KMeans(num_clusters=2).fit(points, new_rng(0)).inertia
        inertia_5 = KMeans(num_clusters=5).fit(points, new_rng(0)).inertia
        assert inertia_5 <= inertia_2 + 1e-9

    def test_predict_matches_fit_assignments(self, rng):
        points, _ = well_separated_blobs(rng)
        model = KMeans(num_clusters=3).fit(points, rng)
        np.testing.assert_array_equal(model.predict(points), model.assignments)

    def test_distances_to_own_centroid_nonnegative(self, rng):
        points, _ = well_separated_blobs(rng)
        model = KMeans(num_clusters=3).fit(points, rng)
        distances = model.distances_to_own_centroid(points)
        assert np.all(distances >= 0.0)

    def test_fewer_points_than_clusters(self, rng):
        points = rng.normal(size=(2, 3))
        model = KMeans(num_clusters=5).fit(points, rng)
        assert model.centroids.shape[0] == 2

    def test_single_cluster(self, rng):
        points = rng.normal(size=(10, 2))
        model = KMeans(num_clusters=1).fit(points, rng)
        np.testing.assert_allclose(model.centroids[0], points.mean(axis=0), atol=1e-9)

    def test_empty_points_raise(self, rng):
        with pytest.raises(AttackError):
            KMeans(num_clusters=2).fit(np.zeros((0, 3)), rng)

    def test_1d_points_rejected(self, rng):
        with pytest.raises(AttackError):
            KMeans(num_clusters=2).fit(np.zeros(5), rng)

    def test_invalid_configuration(self):
        with pytest.raises(AttackError):
            KMeans(num_clusters=0)
        with pytest.raises(AttackError):
            KMeans(num_clusters=2, max_iterations=0)

    def test_predict_before_fit_raises(self):
        with pytest.raises(AttackError):
            KMeans(num_clusters=2).predict(np.ones((2, 2)))

    def test_deterministic_given_same_rng_seed(self):
        points, _ = well_separated_blobs(new_rng(3))
        a = KMeans(num_clusters=3).fit(points, new_rng(7))
        b = KMeans(num_clusters=3).fit(points, new_rng(7))
        np.testing.assert_allclose(a.centroids, b.centroids)

    def test_duplicate_points(self, rng):
        points = np.ones((10, 3))
        model = KMeans(num_clusters=2).fit(points, rng)
        assert np.isfinite(model.inertia)

    def test_nan_points_do_not_crash_seeding(self, rng):
        """NaN coordinates poison the k-means++ weights; seeding must not crash.

        Regression: ``rng.choice(p=...)`` raised on NaN probabilities because
        the degenerate-mass guard only caught ``total <= 0`` (every comparison
        against NaN is False).  The seeder now falls back to a uniform draw.
        """
        points = np.full((8, 2), np.nan)
        model = KMeans(num_clusters=3).fit(points, rng)
        assert model.centroids.shape == (3, 2)
        assert model.assignments.shape == (8,)

    def test_huge_points_overflow_to_uniform_fallback(self, rng):
        """Squared distances overflowing to inf must also hit the fallback."""
        points = np.array([[1e200, 0.0], [-1e200, 0.0]] * 5)
        model = KMeans(num_clusters=2).fit(points, rng)
        assert model.centroids.shape == (2, 2)
        assert model.assignments.shape == (10,)

    def test_plus_plus_uniform_fallback_is_deterministic(self):
        points = np.ones((6, 2))
        a = KMeans._plus_plus_init(points, 3, new_rng(5))
        b = KMeans._plus_plus_init(points, 3, new_rng(5))
        np.testing.assert_array_equal(a, b)
        np.testing.assert_array_equal(a, np.ones((3, 2)))


class TestKMeansProperties:
    @given(
        n=st.integers(min_value=2, max_value=40),
        d=st.integers(min_value=1, max_value=5),
        k=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=30, deadline=None)
    def test_invariants(self, n, d, k, seed):
        generator = new_rng(seed)
        points = generator.normal(size=(n, d))
        model = KMeans(num_clusters=k).fit(points, generator)
        effective_k = min(k, n)
        # Assignments reference existing centroids and every point is assigned.
        assert model.assignments.shape == (n,)
        assert model.assignments.min() >= 0
        assert model.assignments.max() < effective_k
        assert model.centroids.shape == (effective_k, d)
        assert np.isfinite(model.inertia)
