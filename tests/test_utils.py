"""Unit tests for seeding, logging and validation utilities."""

from __future__ import annotations

import logging

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.utils import (
    SeedSequenceFactory,
    check_non_negative,
    check_positive_int,
    check_probability,
    check_ratio,
    get_logger,
    new_rng,
    spawn_rngs,
)
from repro.utils.logging import enable_console_logging


class TestSeeding:
    def test_new_rng_deterministic(self):
        assert new_rng(3).random() == new_rng(3).random()

    def test_spawn_rngs_independent_streams(self):
        a, b = spawn_rngs(0, 2)
        assert a.random() != b.random()

    def test_spawn_rngs_reproducible(self):
        first = [g.random() for g in spawn_rngs(9, 3)]
        second = [g.random() for g in spawn_rngs(9, 3)]
        assert first == second

    def test_spawn_rngs_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_factory_issues_distinct_generators(self):
        factory = SeedSequenceFactory(7)
        values = [factory.next_rng().random() for _ in range(4)]
        assert len(set(values)) == 4
        assert factory.issued == 4
        assert factory.root_seed == 7

    def test_factory_reproducible_across_instances(self):
        a = [g.random() for g in SeedSequenceFactory(1).next_rngs(3)]
        b = [g.random() for g in SeedSequenceFactory(1).next_rngs(3)]
        assert a == b


class TestLogging:
    def test_get_logger_namespacing(self):
        assert get_logger("attack.bgc").name == "repro.attack.bgc"
        assert get_logger("repro.models").name == "repro.models"

    def test_enable_console_logging_is_idempotent(self):
        enable_console_logging(logging.WARNING)
        before = len(logging.getLogger("repro").handlers)
        enable_console_logging(logging.WARNING)
        assert len(logging.getLogger("repro").handlers) == before


class TestValidation:
    def test_check_probability(self):
        assert check_probability(0.5, "p") == 0.5
        with pytest.raises(ConfigurationError):
            check_probability(1.5, "p")

    def test_check_ratio(self):
        assert check_ratio(1.0, "r") == 1.0
        with pytest.raises(ConfigurationError):
            check_ratio(0.0, "r")

    def test_check_positive_int(self):
        assert check_positive_int(3, "n") == 3
        with pytest.raises(ConfigurationError):
            check_positive_int(0, "n")
        with pytest.raises(ConfigurationError):
            check_positive_int(2.5, "n")

    def test_check_non_negative(self):
        assert check_non_negative(0.0, "x") == 0.0
        with pytest.raises(ConfigurationError):
            check_non_negative(-1e-9, "x")


class TestPublicAPI:
    def test_version_exposed(self):
        import repro

        assert repro.__version__ == "1.1.0"

    def test_top_level_exports(self):
        import repro

        for name in ("load_dataset", "make_condenser", "BGC", "ExperimentRunner"):
            assert hasattr(repro, name)
