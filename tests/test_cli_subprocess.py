"""Subprocess-level smoke tests of the CLI on the ``tiny`` dataset.

These run ``python -m repro.cli`` exactly the way a user (or the CI sweep
job) does — a fresh interpreter, ``PYTHONPATH=src`` — and assert exit code 0
plus parseable output for the spec-driven subcommands and the legacy
compatibility wrappers alike.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

TINY_SPEC = {
    "dataset": "tiny",
    "condenser": {"name": "gcond-x", "overrides": {"epochs": 2, "ratio": 0.2}},
    "attack": {"name": "bgc", "overrides": {"epochs": 2, "poison_ratio": 0.2}},
    "trigger": {"overrides": {"trigger_size": 2}},
    "evaluation": {"overrides": {"epochs": 5}},
    "seed": 0,
}

TINY_SWEEP = {
    "name": "cli-smoke",
    "seed": 1,
    "base": {
        "dataset": "tiny",
        "condenser": {"overrides": {"epochs": 2, "ratio": 0.2}},
        "trigger": {"overrides": {"trigger_size": 2}},
        "evaluation": {"overrides": {"epochs": 5}},
    },
    "axes": {
        "condenser": ["gcond", "gcond-x"],
        "attack": [{"name": "bgc", "overrides": {"epochs": 2, "poison_ratio": 0.2}}],
        "defense": ["prune"],
    },
}


def run_cli(*argv: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *argv],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env=env,
        timeout=300,
    )


class TestSpecDrivenCommands:
    def test_run_prints_table(self, tmp_path):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(TINY_SPEC))
        result = run_cli("run", "--spec", str(spec_path))
        assert result.returncode == 0, result.stderr
        assert "ASR %" in result.stdout

    def test_run_json_output_is_parseable(self, tmp_path):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(TINY_SPEC))
        result = run_cli("run", "--spec", str(spec_path), "--json")
        assert result.returncode == 0, result.stderr
        record = json.loads(result.stdout)
        assert record["spec"]["dataset"]["name"] == "tiny"
        assert 0.0 <= record["attack_asr"] <= 1.0

    def test_sweep_writes_one_jsonl_record_per_cell(self, tmp_path):
        spec_path = tmp_path / "sweep.json"
        out_path = tmp_path / "results.jsonl"
        spec_path.write_text(json.dumps(TINY_SWEEP))
        result = run_cli("sweep", "--spec", str(spec_path), "--out", str(out_path))
        assert result.returncode == 0, result.stderr
        lines = out_path.read_text().strip().splitlines()
        assert len(lines) == 2  # 2 condensers × 1 attack × 1 defense
        for line in lines:
            record = json.loads(line)
            assert record["spec"]["attack"]["name"] == "bgc"
            assert 0.0 <= record["defense_cta"] <= 1.0

    def test_parallel_sweep_matches_serial_jsonl(self, tmp_path):
        """The CI acceptance check: --workers 2 produces the same results.jsonl
        as the serial run (modulo wall-clock timings), in canonical order."""
        spec_path = tmp_path / "sweep.json"
        spec_path.write_text(json.dumps(TINY_SWEEP))
        serial_path = tmp_path / "serial.jsonl"
        parallel_path = tmp_path / "parallel.jsonl"
        serial = run_cli("sweep", "--spec", str(spec_path), "--out", str(serial_path))
        assert serial.returncode == 0, serial.stderr
        parallel = run_cli(
            "sweep", "--spec", str(spec_path), "--workers", "2",
            "--out", str(parallel_path),
        )
        assert parallel.returncode == 0, parallel.stderr
        assert "backend=process" in parallel.stdout

        def strip_timings(path: Path):
            return [
                {k: v for k, v in json.loads(line).items() if k != "timings"}
                for line in path.read_text().strip().splitlines()
            ]

        assert strip_timings(serial_path) == strip_timings(parallel_path)

    def test_run_rejects_invalid_spec(self, tmp_path):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps({"condenser": "doscond"}))
        result = run_cli("run", "--spec", str(spec_path))
        assert result.returncode != 0

    def test_example_sweep_spec_parses(self):
        """examples/sweep.json (the CI smoke grid) must stay loadable."""
        payload = json.loads((REPO_ROOT / "examples" / "sweep.json").read_text())
        from repro.api import SweepSpec

        sweep = SweepSpec.from_dict(payload)
        assert sweep.num_cells == 4

    def test_example_experiment_spec_parses(self):
        payload = json.loads((REPO_ROOT / "examples" / "spec.json").read_text())
        from repro.api import ExperimentSpec

        spec = ExperimentSpec.from_dict(payload)
        spec.validate_runnable()


class TestLegacyCommands:
    def test_datasets_lists_tiny(self):
        result = run_cli("datasets")
        assert result.returncode == 0, result.stderr
        assert "tiny" in result.stdout
        assert "cora" in result.stdout

    def test_condense_smoke(self):
        result = run_cli(
            "condense",
            "--dataset", "tiny",
            "--method", "gcond-x",
            "--ratio", "0.2",
            "--epochs", "2",
            "--eval-epochs", "5",
        )
        assert result.returncode == 0, result.stderr
        assert "C-CTA %" in result.stdout

    def test_attack_smoke(self):
        result = run_cli(
            "attack",
            "--dataset", "tiny",
            "--method", "gcond-x",
            "--ratio", "0.2",
            "--epochs", "2",
            "--eval-epochs", "5",
            "--trigger-size", "2",
        )
        assert result.returncode == 0, result.stderr
        assert "ASR %" in result.stdout
        assert "poisoned nodes" in result.stdout


class TestBlockedEnvironmentValidation:
    """A malformed REPRO_BLOCKED_THRESHOLD fails fast with one actionable line.

    Regression: it used to surface as a GraphValidationError traceback out of
    the first chain build, deep inside a run.
    """

    def test_malformed_threshold_exits_2_with_hint(self, monkeypatch):
        monkeypatch.setenv("REPRO_BLOCKED_THRESHOLD", "banana")
        result = run_cli("datasets")
        assert result.returncode == 2
        assert "REPRO_BLOCKED_THRESHOLD must be an integer" in result.stderr
        assert "hint:" in result.stderr
        assert "Traceback" not in result.stderr

    def test_negative_threshold_exits_2(self, monkeypatch):
        monkeypatch.setenv("REPRO_BLOCKED_THRESHOLD", "-3")
        result = run_cli("datasets")
        assert result.returncode == 2
        assert "must be >= 0" in result.stderr

    def test_valid_threshold_is_accepted(self, monkeypatch):
        monkeypatch.setenv("REPRO_BLOCKED_THRESHOLD", "16777216")
        result = run_cli("datasets")
        assert result.returncode == 0, result.stderr


class TestKernelEnvironmentValidation:
    """An unknown REPRO_KERNEL_BACKEND fails fast with one actionable line.

    Same contract as the blocked-threshold knob: the name is validated up
    front in ``main()``, so a typo exits 2 listing the registered backends
    instead of raising a ConfigurationError traceback out of the first
    kernel dispatch mid-run.
    """

    def test_unknown_backend_exits_2_listing_registered(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "banana")
        result = run_cli("datasets")
        assert result.returncode == 2
        assert "unknown kernel backend 'banana'" in result.stderr
        assert "numpy" in result.stderr
        assert "threaded" in result.stderr
        assert "hint:" in result.stderr
        assert "Traceback" not in result.stderr

    def test_registered_backend_is_accepted(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "threaded")
        result = run_cli("datasets")
        assert result.returncode == 0, result.stderr

    def test_whitespace_name_is_stripped(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "  numpy  ")
        result = run_cli("datasets")
        assert result.returncode == 0, result.stderr
