"""Unit tests for the detection-based defenses (extension module)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.condensation.base import CondensedGraph
from repro.defenses.detection import (
    DetectionReport,
    FeatureOutlierConfig,
    FeatureOutlierDetector,
    SpectralSignatureConfig,
    SpectralSignatureDetector,
    detection_summary,
    remove_flagged_nodes,
)
from repro.exceptions import DefenseError
from repro.registry import DEFENSES
from repro.utils.seed import new_rng


@pytest.fixture
def condensed_with_outlier(rng):
    """A condensed graph where node 0 of class 0 is a blatant feature outlier."""
    features = rng.normal(size=(12, 6)) * 0.1
    labels = np.array([0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2])
    features[0] = 10.0  # the planted anomaly
    return CondensedGraph(
        features=features, labels=labels, adjacency=np.eye(12), method="gcond-x"
    )


class TestFeatureOutlierDetector:
    def test_invalid_contamination(self):
        with pytest.raises(DefenseError):
            FeatureOutlierDetector(contamination=0.0)
        with pytest.raises(DefenseError):
            FeatureOutlierDetector(contamination=1.0)

    def test_flags_planted_outlier(self, condensed_with_outlier):
        report = FeatureOutlierDetector(contamination=0.1).detect(condensed_with_outlier)
        assert 0 in report.flagged_indices()

    def test_flagged_count_respects_contamination(self, condensed_with_outlier):
        report = FeatureOutlierDetector(contamination=0.25).detect(condensed_with_outlier)
        assert report.num_flagged == 3

    def test_scores_shape(self, condensed_with_outlier):
        scores = FeatureOutlierDetector().score(condensed_with_outlier)
        assert scores.shape == (12,)

    def test_homogeneous_class_gets_zero_scores(self, rng):
        features = np.ones((6, 4))
        condensed = CondensedGraph(
            features=features, labels=np.zeros(6, dtype=int), adjacency=np.eye(6)
        )
        scores = FeatureOutlierDetector().score(condensed)
        np.testing.assert_allclose(scores, 0.0)


class TestSpectralSignatureDetector:
    def test_flags_planted_outlier(self, condensed_with_outlier):
        report = SpectralSignatureDetector(contamination=0.1).detect(condensed_with_outlier)
        assert 0 in report.flagged_indices()

    def test_scores_are_non_negative(self, condensed_with_outlier):
        scores = SpectralSignatureDetector().score(condensed_with_outlier)
        assert np.all(scores >= 0.0)

    def test_single_member_class_is_skipped(self, rng):
        condensed = CondensedGraph(
            features=rng.normal(size=(3, 4)),
            labels=np.array([0, 1, 2]),
            adjacency=np.eye(3),
        )
        scores = SpectralSignatureDetector().score(condensed)
        np.testing.assert_allclose(scores, 0.0)

    def test_invalid_contamination(self):
        with pytest.raises(DefenseError):
            SpectralSignatureDetector(contamination=2.0)


class TestRemoveFlaggedNodes:
    def test_removes_flagged(self, condensed_with_outlier):
        report = FeatureOutlierDetector(contamination=0.25).detect(condensed_with_outlier)
        cleaned = remove_flagged_nodes(condensed_with_outlier, report)
        assert cleaned.num_nodes == condensed_with_outlier.num_nodes - report.num_flagged
        assert "detection" in cleaned.method

    def test_never_empties_a_class(self, rng):
        condensed = CondensedGraph(
            features=rng.normal(size=(4, 3)),
            labels=np.array([0, 0, 1, 1]),
            adjacency=np.eye(4),
        )
        report = DetectionReport(
            scores=np.array([1.0, 2.0, 3.0, 4.0]),
            flagged=np.array([False, False, True, True]),
            contamination=0.5,
        )
        cleaned = remove_flagged_nodes(condensed, report)
        assert set(np.unique(cleaned.labels)) == {0, 1}

    def test_adjacency_submatrix_taken(self, condensed_with_outlier):
        condensed_with_outlier.adjacency[1, 2] = condensed_with_outlier.adjacency[2, 1] = 1.0
        report = FeatureOutlierDetector(contamination=0.1).detect(condensed_with_outlier)
        cleaned = remove_flagged_nodes(condensed_with_outlier, report)
        assert cleaned.adjacency.shape == (cleaned.num_nodes, cleaned.num_nodes)


class TestDetectorConfigs:
    """The detectors are sweepable: contamination binds through the registry."""

    def test_config_dataclass_validates(self):
        with pytest.raises(DefenseError):
            FeatureOutlierConfig(contamination=0.0)
        with pytest.raises(DefenseError):
            SpectralSignatureConfig(contamination=1.5)

    def test_registry_override_binds_contamination(self):
        for name in ("feature-outlier", "spectral-signature"):
            detector = DEFENSES.build(name, contamination=0.3)
            assert detector.contamination == 0.3

    def test_registry_default_contamination(self):
        assert DEFENSES.build("feature-outlier").contamination == 0.1
        assert DEFENSES.build("spectral-signature").contamination == 0.1

    def test_config_object_and_kwarg_agree(self, condensed_with_outlier):
        via_config = FeatureOutlierDetector(FeatureOutlierConfig(contamination=0.25))
        via_kwarg = FeatureOutlierDetector(contamination=0.25)
        np.testing.assert_array_equal(
            via_config.detect(condensed_with_outlier).flagged,
            via_kwarg.detect(condensed_with_outlier).flagged,
        )

    def test_spec_override_reaches_detector(self):
        from repro.api import ExperimentSpec

        spec = ExperimentSpec.from_dict(
            {
                "dataset": "tiny",
                "defense": {"name": "feature-outlier", "overrides": {"contamination": 0.2}},
            }
        )
        detector = DEFENSES.build(
            spec.defense.name, **(spec.defense.overrides or {})
        )
        assert detector.contamination == 0.2


class TestDetectionSummary:
    def test_summary_keys(self, condensed_with_outlier):
        reports = {
            "outlier": FeatureOutlierDetector().detect(condensed_with_outlier),
            "spectral": SpectralSignatureDetector().detect(condensed_with_outlier),
        }
        summary = detection_summary(condensed_with_outlier, reports)
        assert summary["condensed_nodes"] == 12.0
        assert "outlier_flagged" in summary
        assert "spectral_max_score" in summary
