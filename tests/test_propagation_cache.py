"""Tests for graph version tokens, deltas and the shared propagation cache."""

from __future__ import annotations

import gc

import numpy as np
import pytest
import scipy.sparse as sp

from helpers import build_small_graph
from repro.attack.bgc import BGC, BGCConfig
from repro.attack.trigger import TriggerConfig, TriggerGenerator
from repro.condensation import CondensationConfig
from repro.condensation.dc_graph import DCGraph
from repro.condensation.gc_sntk import GCSNTK
from repro.condensation.gcond import GCond, GCondX
from repro.exceptions import GraphValidationError
from repro.graph.cache import PropagationCache
from repro.graph.data import GraphData, GraphDelta
from repro.graph.propagation import incremental_sgc_precompute, sgc_precompute
from repro.graph.splits import SplitIndices
from repro.utils.seed import new_rng


def _random_delta(graph: GraphData, rng: np.random.Generator):
    """A random variant of ``graph`` honouring the GraphDelta contract.

    Feature rows are perturbed only inside the changed set ``S``; edges are
    toggled only between endpoints that both lie in ``S`` or in the appended
    block; a random number of new nodes is appended.
    """
    n = graph.num_nodes
    changed = np.sort(
        rng.choice(n, size=int(rng.integers(1, max(2, n // 10))), replace=False)
    )
    num_new = int(rng.integers(0, 4))
    total = n + num_new

    dense = np.zeros((total, total))
    dense[:n, :n] = graph.adjacency.toarray()
    pool = np.concatenate([changed, np.arange(n, total)])
    if pool.size >= 2:
        for _ in range(int(rng.integers(1, 8))):
            i, j = rng.choice(pool, size=2, replace=False)
            value = 1.0 - dense[i, j]
            dense[i, j] = dense[j, i] = value

    features = np.vstack(
        [graph.features.copy(), rng.normal(size=(num_new, graph.num_features))]
    )
    features[changed] += rng.normal(scale=0.5, size=(changed.size, graph.num_features))
    labels = np.concatenate(
        [graph.labels, rng.integers(0, graph.num_classes, size=num_new)]
    )
    return graph.with_delta(
        changed,
        adjacency=sp.csr_matrix(dense),
        features=features,
        labels=labels,
    )


class TestVersionTokens:
    def test_versions_are_unique_and_monotonic(self, small_graph):
        other = build_small_graph(seed=11)
        assert small_graph.version != other.version
        newer = small_graph.with_(name="renamed")
        assert newer.version > small_graph.version

    def test_unpickled_graph_draws_a_fresh_version(self, small_graph):
        """Version tokens are process-local: a pickled graph must re-key.

        An unpickled graph carrying a foreign process's token could collide
        with a token this process issues for a different graph (the spawn
        start method resets the counter), and the cache would silently serve
        one graph's chains for the other.
        """
        import pickle

        clone = pickle.loads(pickle.dumps(small_graph))
        assert clone.version != small_graph.version
        np.testing.assert_array_equal(clone.features, small_graph.features)
        # The clone is cache-consistent under its new key.
        cache = PropagationCache()
        np.testing.assert_allclose(
            cache.propagated(clone, 2),
            sgc_precompute(clone.adjacency, clone.features, 2),
            rtol=0.0,
            atol=1e-12,
        )

    def test_label_only_variant_records_empty_delta(self, small_graph):
        variant = small_graph.with_(labels=small_graph.labels.copy())
        assert variant.derivation is not None
        assert variant.derivation.base is small_graph
        assert variant.derivation.changed_nodes.size == 0

    def test_existing_derivation_survives_metadata_change(self, small_graph, rng):
        derived = _random_delta(small_graph, rng)
        renamed = derived.with_(name="renamed")
        assert renamed.derivation is derived.derivation

    def test_structural_change_drops_derivation(self, small_graph):
        variant = small_graph.with_(labels=small_graph.labels.copy())
        structural = variant.with_(features=variant.features * 2.0)
        assert structural.derivation is None

    def test_with_delta_validates_changed_nodes(self, small_graph):
        with pytest.raises(GraphValidationError):
            small_graph.with_delta(np.array([small_graph.num_nodes]))

    def test_delta_may_only_append_nodes(self, small_graph):
        shrunk = sp.csr_matrix((5, 5))
        with pytest.raises(GraphValidationError):
            GraphData(
                adjacency=shrunk,
                features=np.zeros((5, small_graph.num_features)),
                labels=np.zeros(5, dtype=np.int64),
                split=SplitIndices(
                    train=np.array([0]), val=np.array([1]), test=np.array([2])
                ),
                derivation=GraphDelta(
                    base=small_graph, changed_nodes=np.empty(0, dtype=np.int64)
                ),
            )


class TestIncrementalEquivalence:
    @pytest.mark.parametrize("trial", range(8))
    def test_random_deltas_match_full_recompute(self, trial):
        """Property-style: incremental propagation equals a cold recompute."""
        rng = new_rng(1000 + trial)
        graph = build_small_graph(seed=trial)
        derived = _random_delta(graph, rng)
        cache = PropagationCache()
        for num_hops in (1, 2, 3):
            expected = sgc_precompute(derived.adjacency, derived.features, num_hops)
            actual = cache.propagated(derived, num_hops)
            np.testing.assert_allclose(actual, expected, rtol=0.0, atol=1e-10)

    def test_stacked_deltas_match_full_recompute(self, small_graph):
        """A delta whose base is itself derived still propagates correctly."""
        rng = new_rng(77)
        first = _random_delta(small_graph, rng)
        second = _random_delta(first, rng)
        cache = PropagationCache()
        expected = sgc_precompute(second.adjacency, second.features, 2)
        np.testing.assert_allclose(
            cache.propagated(second, 2), expected, rtol=0.0, atol=1e-10
        )

    def test_label_only_variant_shares_base_product(self, small_graph):
        cache = PropagationCache()
        base_product = cache.propagated(small_graph, 2)
        variant = small_graph.with_(labels=small_graph.labels.copy())
        assert cache.propagated(variant, 2) is base_product

    def test_incremental_kernel_rejects_short_chain(self, small_graph):
        with pytest.raises(GraphValidationError):
            incremental_sgc_precompute(
                sp.eye(small_graph.num_nodes, format="csr"),
                small_graph.features,
                [small_graph.features],
                np.array([0]),
                num_hops=2,
            )


class TestCacheBehaviour:
    def test_repeated_propagation_hits(self, small_graph):
        cache = PropagationCache()
        first = cache.propagated(small_graph, 2)
        hits_before = cache.hits
        assert cache.propagated(small_graph, 2) is first
        assert cache.hits == hits_before + 1

    def test_new_version_misses_even_with_equal_shape(self):
        """Regression for the old ``id(graph)``-keyed memo.

        ``id()`` can be recycled as soon as a graph is garbage collected, so
        an id-keyed cache could silently serve the *previous* graph's
        propagated features.  Version tokens are never reused; churn through
        several same-shape graphs (freeing each so CPython may recycle its
        address) and check every propagation is fresh and correct.
        """
        cache = PropagationCache()
        graph = None
        for seed in range(5):
            del graph
            gc.collect()
            graph = build_small_graph(seed=seed)
            expected = sgc_precompute(graph.adjacency, graph.features, 2)
            np.testing.assert_allclose(
                cache.propagated(graph, 2), expected, rtol=0.0, atol=1e-12
            )

    def test_condenser_sees_fresh_graph_after_object_reuse(self):
        """The old bug exercised end-to-end through a condenser instance."""
        cache = PropagationCache()
        condenser = GCondX(CondensationConfig(epochs=1, ratio=0.2), cache=cache)
        for seed in (3, 4):
            graph = build_small_graph(seed=seed)
            expected = sgc_precompute(
                graph.adjacency, graph.features, condenser.config.num_hops
            )
            np.testing.assert_allclose(
                condenser._real_propagated(graph), expected, rtol=0.0, atol=1e-12
            )
            del graph
            gc.collect()

    def test_invalidate_after_inplace_mutation(self, small_graph):
        cache = PropagationCache()
        before = cache.propagated(small_graph, 2).copy()
        small_graph.features[:] = small_graph.features * 3.0
        cache.invalidate(small_graph)
        after = cache.propagated(small_graph, 2)
        np.testing.assert_allclose(after, before * 3.0, rtol=1e-10)

    def test_invalidate_discards_provenance_tagged_buffers(self, small_graph):
        """Regression: a pooled buffer patched against a mutated base.

        After an in-place base mutation plus invalidate(), a recycled buffer
        whose provenance matched the (unchanged) base version used to be
        patched in place, returning pre-mutation values on rows outside the
        stale/dirty sets.  invalidate() must clear the pool too.
        """
        rng = new_rng(21)
        cache = PropagationCache(max_graphs=2)
        for _ in range(4):  # warm the pool with provenance-tagged buffers
            derived = TestBufferPool._fixed_shape_delta(small_graph, rng)
            cache.propagated(derived, 2)
        small_graph.features[:] = small_graph.features * 2.0
        cache.invalidate(small_graph)
        derived = TestBufferPool._fixed_shape_delta(small_graph, rng)
        expected = sgc_precompute(derived.adjacency, derived.features, 2)
        np.testing.assert_allclose(
            cache.propagated(derived, 2), expected, rtol=0.0, atol=1e-10
        )

    def test_invalidate_all(self, small_graph):
        cache = PropagationCache()
        cache.propagated(small_graph, 2)
        cache.normalized_adjacency(small_graph.adjacency)
        cache.invalidate()
        stats = cache.stats()
        assert stats["graphs"] == 0 and stats["raw_matrices"] == 0

    def test_lru_is_bounded(self):
        """Both LRU levels are bounded: entries per shard and shards overall.

        Independent base graphs are independent datasets, so each owns a
        shard; a stream of derived graphs churns inside its base's shard.
        """
        cache = PropagationCache(max_graphs=2, max_shards=2)
        for seed in range(4):  # four datasets -> shard-level eviction
            cache.propagated(build_small_graph(seed=seed), 1)
        stats = cache.stats()
        assert stats["shards"] <= 2
        assert stats["graphs"] <= 2 * 2

    def test_per_shard_lru_is_bounded(self, small_graph, rng):
        cache = PropagationCache(max_graphs=2, max_shards=2)
        for _ in range(5):  # derived stream: all entries share one shard
            cache.propagated(_random_delta(small_graph, rng), 2)
        stats = cache.stats()
        assert stats["shards"] == 1
        assert stats["graphs"] <= 2

    def test_datasets_coexist_across_shards(self, small_graph, rng):
        """A second dataset's stream must not evict the first's base chain."""
        cache = PropagationCache(max_graphs=2, max_shards=4)
        other = build_small_graph(seed=23)
        cache.propagated(small_graph, 2)
        cache.propagated(other, 2)
        before = cache.misses
        for _ in range(3):  # interleave derived streams of both datasets
            cache.propagated(_random_delta(small_graph, rng), 2)
            cache.propagated(_random_delta(other, rng), 2)
        # 2 misses per derived graph (normalize + propagate); base chains
        # stay resident in their own shards, so no extra recomputes appear.
        assert cache.misses - before == 12

    def test_minimal_lru_keeps_base_resident(self, small_graph, rng):
        """Regression: a derived insertion must never evict its own base.

        With ``max_graphs=2`` an attack-style stream of deltas over one base
        used to evict the base entry on every epoch, silently reverting to a
        full recompute per epoch (3 misses/epoch instead of 2: normalize +
        propagate of the derived graph only).
        """
        cache = PropagationCache(max_graphs=2)
        cache.propagated(small_graph, 2)  # warm the base chain
        steady_misses = []
        before = cache.misses
        for _ in range(4):
            derived = _random_delta(small_graph, rng)
            cache.propagated(derived, 2)
            steady_misses.append(cache.misses - before)
            before = cache.misses
        # 2 misses per epoch: the derived graph's propagated + normalized.
        # Base eviction would show up as 3+ (base chain recomputed too).
        assert steady_misses == [2, 2, 2, 2]

    def test_shared_across_condenser_families(self, small_graph):
        """GCond / GCond-X / GC-SNTK reuse one propagation of the same graph."""
        cache = PropagationCache()
        config = CondensationConfig(epochs=1, ratio=0.2)
        product = GCond(config, cache=cache)._real_propagated(small_graph)
        misses_after_first = cache.misses
        assert GCondX(config, cache=cache)._real_propagated(small_graph) is product
        assert (
            GCSNTK(config, cache=cache)._real_propagated(small_graph) is product
        )
        assert cache.misses == misses_after_first
        # DC-Graph matches raw features and bypasses propagation entirely.
        assert (
            DCGraph(config, cache=cache)._real_propagated(small_graph)
            is small_graph.features
        )


class TestShardedLRUStress:
    """Property/stress coverage of the two-level (shard, entry) LRU."""

    def test_interleaved_multi_dataset_stream_respects_bounds(self):
        """Random interleaving over several datasets never exceeds the caps.

        Property-style: a long stream of base propagations and derived
        deltas over four datasets, driven by a seeded RNG, checked after
        *every* operation — ``shards <= max_shards``, every shard holds at
        most ``max_graphs`` entries, and the totals stats agree.
        """
        rng = new_rng(4242)
        cache = PropagationCache(max_graphs=3, max_shards=2)
        bases = [build_small_graph(seed=seed) for seed in range(4)]
        for _ in range(60):
            graph = bases[int(rng.integers(len(bases)))]
            if rng.random() < 0.5:
                graph = _random_delta(graph, rng)
            cache.propagated(graph, int(rng.integers(1, 4)))
            stats = cache.stats()
            assert stats["shards"] <= 2
            assert stats["graphs"] <= 2 * 3
            for shard in cache._shards.values():
                assert len(shard) <= 3

    def test_eviction_order_is_lru_within_a_shard(self, small_graph, rng):
        """Touching an entry protects it; the least-recently-used one falls."""
        cache = PropagationCache(max_graphs=3)
        cache.propagated(small_graph, 2)  # base chain (kept hot by derived use)
        first = _random_delta(small_graph, rng)
        second = _random_delta(small_graph, rng)
        cache.propagated(first, 2)
        cache.propagated(second, 2)
        cache.propagated(first, 2)  # refresh `first`: now `second` is LRU
        third = _random_delta(small_graph, rng)
        cache.propagated(third, 2)  # over capacity: evicts exactly one entry
        (shard,) = cache._shards.values()
        assert small_graph.version in shard, "base chain must stay resident"
        assert first.version in shard, "recently-touched entry was evicted"
        assert third.version in shard
        assert second.version not in shard, "LRU entry should have been evicted"

    def test_shard_eviction_retires_whole_datasets_lru_first(self):
        cache = PropagationCache(max_graphs=2, max_shards=2)
        a, b, c = (build_small_graph(seed=seed) for seed in (31, 32, 33))
        cache.propagated(a, 1)
        cache.propagated(b, 1)
        cache.propagated(a, 1)  # refresh dataset A: B is now the LRU shard
        cache.propagated(c, 1)  # third dataset: B's shard is retired whole
        assert a.version in cache._shards
        assert c.version in cache._shards
        assert b.version not in cache._shards


class TestWarmStartHandoff:
    """export_base_chains / warm_start: the parallel executor's cache handoff."""

    def test_round_trip_through_pickle_is_exact_and_hit_consistent(self, small_graph):
        import pickle

        source = PropagationCache()
        expected = source.propagated(small_graph, 2)
        counters_before = (source.hits, source.misses)
        payload = pickle.loads(pickle.dumps(source.export_base_chains(small_graph)))
        # Exporting is pure observation: no hit/miss accounting.
        assert (source.hits, source.misses) == counters_before

        target = PropagationCache()
        target.warm_start(small_graph, payload)
        assert (target.hits, target.misses) == (0, 0)
        for hop in (0, 1, 2):
            np.testing.assert_array_equal(
                target.propagated(small_graph, hop), source.propagated(small_graph, hop)
            )
        # Every post-warm-start read is a pure hit.
        assert target.misses == 0
        assert target.hits == 3
        normalized = target.normalized(small_graph)
        assert target.misses == 0
        assert (normalized != source.normalized(small_graph)).nnz == 0

    def test_warm_started_base_serves_incremental_updates(self, small_graph, rng):
        """A derived delta patches against warm-started chains — no recompute."""
        source = PropagationCache()
        source.propagated(small_graph, 2)
        target = PropagationCache()
        target.warm_start(small_graph, source.export_base_chains(small_graph))

        derived = _random_delta(small_graph, rng)
        misses_before = target.misses
        product = target.propagated(derived, 2)
        # 2 misses (the derived graph's normalize + propagate), 0 base work.
        assert target.misses - misses_before == 2
        assert target.stats()["incremental_updates"] == 1
        expected = sgc_precompute(derived.adjacency, derived.features, 2)
        np.testing.assert_allclose(product, expected, rtol=0.0, atol=1e-10)

    def test_export_of_uncached_graph_is_empty_and_warm_start_noop(self, small_graph):
        cache = PropagationCache()
        payload = cache.export_base_chains(small_graph)
        assert payload == {}
        target = PropagationCache()
        target.warm_start(small_graph, payload)
        assert target.stats()["graphs"] == 0

    def test_partial_export_only_ships_resident_artefacts(self, small_graph):
        cache = PropagationCache()
        cache.normalized(small_graph)  # operator cached, no hop chain yet
        payload = cache.export_base_chains(small_graph)
        assert payload["normalized"] is not None
        assert payload["hops"] == {}
        target = PropagationCache()
        target.warm_start(small_graph, payload)
        assert target.normalized(small_graph) is payload["normalized"]
        assert target.misses == 0


class TestBufferPool:
    """The retired-buffer pool must recycle aggressively but never alias."""

    @staticmethod
    def _fixed_shape_delta(graph, rng, num_new=2):
        """A delta variant with a fixed appended-node count, so successive
        products share a shape and exercise the provenance patch path."""
        n = graph.num_nodes
        changed = np.sort(rng.choice(n, size=3, replace=False))
        dense = np.zeros((n + num_new, n + num_new))
        dense[:n, :n] = graph.adjacency.toarray()
        for i in range(num_new):
            dense[changed[i % 3], n + i] = dense[n + i, changed[i % 3]] = 1.0
        features = np.vstack(
            [graph.features.copy(), rng.normal(size=(num_new, graph.num_features))]
        )
        labels = np.concatenate([graph.labels, np.zeros(num_new, dtype=np.int64)])
        return graph.with_delta(
            changed, adjacency=sp.csr_matrix(dense), features=features, labels=labels
        )

    def test_steady_state_reuses_buffers_and_stays_exact(self, small_graph):
        rng = new_rng(9)
        cache = PropagationCache(max_graphs=2)
        for _ in range(8):
            derived = self._fixed_shape_delta(small_graph, rng)
            product = cache.propagated(derived, 2)
            expected = sgc_precompute(derived.adjacency, derived.features, 2)
            np.testing.assert_allclose(product, expected, rtol=0.0, atol=1e-10)
            del product
        assert cache.stats()["buffer_reuses"] > 0

    def test_live_products_are_never_recycled(self, small_graph):
        rng = new_rng(10)
        cache = PropagationCache(max_graphs=2)
        held = cache.propagated(self._fixed_shape_delta(small_graph, rng), 2)
        held_snapshot = held.copy()
        later = []
        for _ in range(6):  # churn versions to force evictions and pool takes
            derived = self._fixed_shape_delta(small_graph, rng)
            later.append(cache.propagated(derived, 2))
        for index, product in enumerate(later):
            assert not np.shares_memory(product, held)
            for other in later[index + 1 :]:
                assert not np.shares_memory(product, other)
        np.testing.assert_array_equal(held, held_snapshot)


class TestRawAdjacencyMemo:
    def test_same_matrix_returns_cached_operator(self, small_graph):
        cache = PropagationCache()
        first = cache.normalized_adjacency(small_graph.adjacency)
        assert cache.normalized_adjacency(small_graph.adjacency) is first

    def test_entry_evicted_when_matrix_dies(self):
        cache = PropagationCache()
        matrix = sp.eye(10, format="csr")
        cache.normalized_adjacency(matrix)
        assert cache.stats()["raw_matrices"] == 1
        del matrix
        gc.collect()
        assert cache.stats()["raw_matrices"] == 0

    def test_value_only_inplace_edit_is_detected(self):
        """Regression: scaling .data in place keeps (shape, nnz) intact —
        the fingerprint must still catch it."""
        from repro.graph.normalize import gcn_normalize

        cache = PropagationCache()
        dense = np.zeros((5, 5))
        dense[0, 1] = dense[1, 0] = 1.0
        matrix = sp.csr_matrix(dense)
        stale = cache.normalized_adjacency(matrix)
        matrix.data *= 2.0
        fresh = cache.normalized_adjacency(matrix)
        assert fresh is not stale
        np.testing.assert_allclose(
            fresh.toarray(), gcn_normalize(matrix).toarray(), rtol=1e-12
        )

    def test_structural_inplace_edit_is_detected(self):
        import warnings

        from repro.graph.normalize import gcn_normalize

        cache = PropagationCache()
        dense = np.zeros((6, 6))
        dense[0, 1] = dense[1, 0] = 1.0
        matrix = sp.csr_matrix(dense)
        stale = cache.normalized_adjacency(matrix)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")  # SparseEfficiencyWarning
            matrix[2, 3] = 1.0
            matrix[3, 2] = 1.0
        fresh = cache.normalized_adjacency(matrix)
        assert fresh is not stale
        np.testing.assert_allclose(
            fresh.toarray(), gcn_normalize(matrix).toarray(), rtol=1e-12
        )


class TestBGCDeltaIntegration:
    def test_poisoned_graph_records_delta_against_working(self, small_graph, rng):
        attack = BGC(BGCConfig(poison_number=3, epochs=1))
        generator = TriggerGenerator(
            small_graph.num_features, rng, TriggerConfig(trigger_size=2)
        )
        generator.calibrate(small_graph.features)
        poisoned_nodes = np.array([1, 5, 9])
        base_poisoned = small_graph.with_(labels=small_graph.labels.copy())
        poisoned = attack._build_poisoned_graph(
            small_graph, base_poisoned, generator, poisoned_nodes
        )
        assert poisoned.derivation is not None
        assert poisoned.derivation.base is small_graph
        np.testing.assert_array_equal(
            poisoned.derivation.changed_nodes, np.unique(poisoned_nodes)
        )
        cache = PropagationCache()
        expected = sgc_precompute(poisoned.adjacency, poisoned.features, 2)
        np.testing.assert_allclose(
            cache.propagated(poisoned, 2), expected, rtol=0.0, atol=1e-10
        )
        assert cache.stats()["incremental_updates"] == 1
