"""Unit tests for adjacency normalisation and propagation."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import GraphValidationError
from repro.graph.normalize import (
    add_self_loops,
    dense_gcn_normalize,
    gcn_normalize,
    row_normalize,
    symmetric_laplacian,
)
from repro.graph.propagation import (
    appnp_propagate,
    chebyshev_polynomials,
    dense_sgc_precompute,
    sgc_precompute,
)


@pytest.fixture
def path_graph():
    """A 4-node path graph 0-1-2-3."""
    adjacency = np.zeros((4, 4))
    for i in range(3):
        adjacency[i, i + 1] = adjacency[i + 1, i] = 1.0
    return sp.csr_matrix(adjacency)


class TestNormalization:
    def test_add_self_loops(self, path_graph):
        looped = add_self_loops(path_graph)
        np.testing.assert_allclose(looped.diagonal(), np.ones(4))

    def test_gcn_normalize_spectrum_bounded_by_one(self, path_graph):
        normalized = gcn_normalize(path_graph).toarray()
        eigenvalues = np.linalg.eigvalsh(normalized)
        assert eigenvalues.max() <= 1.0 + 1e-9
        assert eigenvalues.min() >= -1.0 - 1e-9

    def test_gcn_normalize_symmetric(self, path_graph):
        normalized = gcn_normalize(path_graph).toarray()
        np.testing.assert_allclose(normalized, normalized.T)

    def test_gcn_normalize_isolated_node_no_nan(self):
        adjacency = sp.csr_matrix((3, 3))
        normalized = gcn_normalize(adjacency, add_loops=False)
        assert np.all(np.isfinite(normalized.toarray()))

    def test_gcn_normalize_rejects_non_square(self):
        with pytest.raises(GraphValidationError):
            gcn_normalize(sp.csr_matrix(np.ones((2, 3))))

    def test_dense_matches_sparse(self, path_graph):
        dense = dense_gcn_normalize(path_graph.toarray())
        sparse = gcn_normalize(path_graph).toarray()
        np.testing.assert_allclose(dense, sparse, atol=1e-12)

    def test_row_normalize_sparse(self, path_graph):
        normalized = row_normalize(path_graph)
        sums = np.asarray(normalized.sum(axis=1)).reshape(-1)
        np.testing.assert_allclose(sums, np.ones(4))

    def test_row_normalize_dense_handles_zero_rows(self):
        matrix = np.array([[1.0, 1.0], [0.0, 0.0]])
        normalized = row_normalize(matrix)
        np.testing.assert_allclose(normalized[0], [0.5, 0.5])
        np.testing.assert_allclose(normalized[1], [0.0, 0.0])

    def test_symmetric_laplacian_eigenvalues_in_range(self, path_graph):
        laplacian = symmetric_laplacian(path_graph).toarray()
        eigenvalues = np.linalg.eigvalsh(laplacian)
        assert eigenvalues.min() >= -1e-9
        assert eigenvalues.max() <= 2.0 + 1e-9


class TestPropagation:
    def test_sgc_zero_hops_is_identity(self, path_graph, rng):
        features = rng.normal(size=(4, 3))
        np.testing.assert_allclose(sgc_precompute(path_graph, features, 0), features)

    def test_sgc_matches_manual_one_hop(self, path_graph, rng):
        features = rng.normal(size=(4, 3))
        normalized = gcn_normalize(path_graph)
        expected = normalized @ features
        np.testing.assert_allclose(sgc_precompute(path_graph, features, 1), expected)

    def test_sgc_negative_hops_rejected(self, path_graph):
        with pytest.raises(GraphValidationError):
            sgc_precompute(path_graph, np.ones((4, 2)), -1)

    def test_dense_sgc_matches_sparse(self, path_graph, rng):
        features = rng.normal(size=(4, 3))
        sparse_result = sgc_precompute(path_graph, features, 2)
        dense_result = dense_sgc_precompute(path_graph.toarray(), features, 2)
        np.testing.assert_allclose(dense_result, sparse_result, atol=1e-12)

    def test_appnp_teleport_one_is_identity(self, path_graph, rng):
        predictions = rng.normal(size=(4, 2))
        out = appnp_propagate(path_graph, predictions, num_iterations=5, teleport=1.0)
        np.testing.assert_allclose(out, predictions)

    def test_appnp_invalid_teleport_rejected(self, path_graph):
        with pytest.raises(GraphValidationError):
            appnp_propagate(path_graph, np.ones((4, 2)), 3, teleport=0.0)

    def test_appnp_smooths_towards_neighbours(self, path_graph):
        predictions = np.array([[1.0], [0.0], [0.0], [0.0]])
        out = appnp_propagate(path_graph, predictions, num_iterations=10, teleport=0.1)
        # Mass should have spread from node 0 to its neighbours.
        assert out[1, 0] > 0.0

    def test_chebyshev_order_zero(self, path_graph, rng):
        features = rng.normal(size=(4, 3))
        polys = chebyshev_polynomials(path_graph, features, 0)
        assert len(polys) == 1
        np.testing.assert_allclose(polys[0], features)

    def test_chebyshev_recurrence_length(self, path_graph, rng):
        features = rng.normal(size=(4, 3))
        polys = chebyshev_polynomials(path_graph, features, 3)
        assert len(polys) == 4

    def test_chebyshev_negative_order_rejected(self, path_graph):
        with pytest.raises(GraphValidationError):
            chebyshev_polynomials(path_graph, np.ones((4, 2)), -1)
