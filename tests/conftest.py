"""Shared fixtures: small, fast synthetic graphs and deterministic RNGs.

Reusable non-fixture helpers live in ``tests/helpers.py`` — import them with
``from helpers import ...``, never from ``conftest`` (the bare name is
ambiguous because ``benchmarks/`` also ships a conftest).
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from helpers import build_small_graph
from repro.graph.data import GraphData
from repro.graph.splits import SplitIndices
from repro.utils.seed import new_rng


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator."""
    return new_rng(12345)


@pytest.fixture
def small_graph() -> GraphData:
    """A 90-node, 3-class graph with informative features."""
    return build_small_graph()


@pytest.fixture
def tiny_graph() -> GraphData:
    """A minimal hand-built graph (6 nodes, 2 classes) for exact assertions."""
    adjacency = sp.csr_matrix(
        np.array(
            [
                [0, 1, 1, 0, 0, 0],
                [1, 0, 1, 0, 0, 0],
                [1, 1, 0, 1, 0, 0],
                [0, 0, 1, 0, 1, 1],
                [0, 0, 0, 1, 0, 1],
                [0, 0, 0, 1, 1, 0],
            ],
            dtype=float,
        )
    )
    features = np.array(
        [
            [1.0, 0.0, 0.2],
            [0.9, 0.1, 0.1],
            [0.8, 0.0, 0.0],
            [0.0, 1.0, 0.1],
            [0.1, 0.9, 0.0],
            [0.0, 0.8, 0.2],
        ]
    )
    labels = np.array([0, 0, 0, 1, 1, 1])
    split = SplitIndices(
        train=np.array([0, 1, 3, 4]), val=np.array([2]), test=np.array([5])
    )
    return GraphData(
        adjacency=adjacency, features=features, labels=labels, split=split, name="tiny"
    )
