"""Tests for the component registries (repro.registry)."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import pytest

import repro  # noqa: F401  — importing the package populates every registry
from repro.attack.bgc import BGC, BGCConfig
from repro.condensation.base import CondensationConfig, Condenser
from repro.defenses.prune import PruneDefense
from repro.exceptions import ConfigurationError
from repro.graph.data import GraphData
from repro.models.base import NodeClassifier
from repro.registry import (
    ATTACKS,
    CONDENSERS,
    DATASETS,
    DEFENSES,
    MODELS,
    Registry,
    all_registries,
    bind_config,
)
from repro.utils.seed import new_rng


class TestBindConfig:
    def test_defaults_when_no_overrides(self):
        config = bind_config(CondensationConfig, {})
        assert config == CondensationConfig()

    def test_flat_override(self):
        config = bind_config(CondensationConfig, {"epochs": 5, "ratio": 0.5})
        assert config.epochs == 5
        assert config.ratio == pytest.approx(0.5)

    def test_dot_path_reaches_nested_config(self):
        config = bind_config(BGCConfig, {"trigger.trigger_size": 2, "epochs": 3})
        assert config.trigger.trigger_size == 2
        assert config.epochs == 3
        # untouched nested defaults survive
        assert config.trigger.hidden == BGCConfig().trigger.hidden

    def test_nested_dict_form_binds_like_dot_path(self):
        """{"trigger": {"trigger_size": 2}} must not leave a raw dict behind."""
        from repro.attack.trigger import TriggerConfig

        config = bind_config(BGCConfig, {"trigger": {"trigger_size": 2}})
        assert isinstance(config.trigger, TriggerConfig)
        assert config.trigger.trigger_size == 2

    def test_nested_dict_and_dot_path_merge(self):
        config = bind_config(
            BGCConfig, {"trigger": {"trigger_size": 2}, "trigger.hidden": 16}
        )
        assert config.trigger.trigger_size == 2
        assert config.trigger.hidden == 16

    def test_base_config_is_not_mutated(self):
        base = BGCConfig(epochs=7)
        bound = bind_config(BGCConfig, {"trigger.trigger_size": 2}, base=base)
        assert base.trigger.trigger_size == 4
        assert bound.trigger.trigger_size == 2
        assert bound.epochs == 7

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown CondensationConfig field"):
            bind_config(CondensationConfig, {"nope": 1})

    def test_validation_runs_on_final_values(self):
        with pytest.raises(ConfigurationError):
            bind_config(CondensationConfig, {"epochs": 0})

    def test_dotted_override_on_scalar_field_rejected(self):
        with pytest.raises(ConfigurationError, match="not a nested config"):
            bind_config(CondensationConfig, {"epochs.inner": 1})


class TestRegistryMechanics:
    def _registry(self) -> Registry:
        return Registry("widget")

    def test_decorator_registration_and_alias(self):
        registry = self._registry()

        @registry.register("alpha", aliases=("a",))
        class Alpha:
            pass

        assert registry.available() == ["alpha"]
        assert "a" in registry
        assert registry.get("A").factory is Alpha
        assert registry.canonical("a") == "alpha"

    def test_duplicate_name_rejected(self):
        registry = self._registry()
        registry.register("x", factory=object)
        with pytest.raises(ConfigurationError, match="already registered"):
            registry.register("x", factory=object)

    def test_duplicate_alias_rejected(self):
        registry = self._registry()
        registry.register("x", factory=object, aliases=("y",))
        with pytest.raises(ConfigurationError, match="already registered"):
            registry.register("y", factory=object)

    def test_unknown_name_lists_available(self):
        registry = self._registry()
        registry.register("only", factory=object)
        with pytest.raises(ConfigurationError, match="available: only"):
            registry.get("missing")

    def test_build_without_config_cls_passes_kwargs(self):
        registry = self._registry()

        @registry.register("make")
        class Thing:
            def __init__(self, value=1):
                self.value = value

        assert registry.build("make", value=9).value == 9

    def test_build_binds_config_and_constructor_kwargs(self):
        registry = self._registry()

        @dataclass
        class WidgetConfig:
            size: int = 1

        @registry.register("w", config_cls=WidgetConfig)
        class Widget:
            def __init__(self, config=None, extra=0):
                self.config = config or WidgetConfig()
                self.extra = extra

        built = registry.build("w", size=3, extra=5)
        assert built.config.size == 3
        assert built.extra == 5
        # no overrides → config=None → component default applies
        assert registry.build("w").config == WidgetConfig()

    def test_build_rejects_unknown_override(self):
        registry = self._registry()

        @dataclass
        class WidgetConfig:
            size: int = 1

        registry.register("w", factory=lambda config=None: config, config_cls=WidgetConfig)
        with pytest.raises(ConfigurationError, match="unknown override"):
            registry.build("w", nonsense=1)


class TestRegistryCompleteness:
    """Every concrete implementation must be registered and buildable."""

    def test_all_five_families_are_populated(self):
        for name, registry in all_registries().items():
            assert len(registry) > 0, f"{name} registry is empty"

    @pytest.mark.parametrize("name", ["cora", "citeseer", "flickr", "reddit", "tiny"])
    def test_datasets_buildable(self, name):
        graph = DATASETS.build(name, seed=0)
        assert isinstance(graph, GraphData)
        assert graph.name.lower() == name

    @pytest.mark.parametrize("name", ["gcn", "sgc", "sage", "mlp", "appnp", "cheby"])
    def test_models_buildable(self, name):
        model = MODELS.build(name, in_features=8, num_classes=3, rng=new_rng(0))
        assert isinstance(model, NodeClassifier)

    @pytest.mark.parametrize("name", ["gcond", "gcond-x", "dc-graph", "gc-sntk"])
    def test_condensers_buildable(self, name):
        condenser = CONDENSERS.build(name, epochs=2, ratio=0.1)
        assert isinstance(condenser, Condenser)
        assert condenser.config.epochs == 2

    @pytest.mark.parametrize(
        "alias,canonical",
        [("gcondx", "gcond-x"), ("dcgraph", "dc-graph"), ("gcsntk", "gc-sntk")],
    )
    def test_condenser_aliases_resolve(self, alias, canonical):
        assert CONDENSERS.canonical(alias) == canonical

    @pytest.mark.parametrize("name", ["bgc", "naive", "gta", "doorping"])
    def test_attacks_buildable(self, name):
        attack = ATTACKS.build(name)
        assert hasattr(attack, "run")
        assert hasattr(attack, "config")

    def test_attack_nested_trigger_override(self):
        attack = ATTACKS.build("bgc", **{"epochs": 2, "trigger.trigger_size": 2})
        assert isinstance(attack, BGC)
        assert attack.config.trigger.trigger_size == 2

    @pytest.mark.parametrize(
        "name", ["prune", "randsmooth", "feature-outlier", "spectral-signature"]
    )
    def test_defenses_buildable(self, name):
        defense = DEFENSES.build(name)
        assert (
            hasattr(defense, "apply_to_condensed")
            or hasattr(defense, "wrap")
            or hasattr(defense, "detect")
        )

    def test_prune_defense_config_binding(self):
        defense = DEFENSES.build("prune", prune_fraction=0.5)
        assert isinstance(defense, PruneDefense)
        assert defense.config.prune_fraction == pytest.approx(0.5)

    def test_gc_sntk_constructor_kwarg_forwarded(self):
        condenser = CONDENSERS.build("gc-sntk", ridge=0.5, epochs=2)
        assert condenser.ridge == pytest.approx(0.5)
        assert condenser.config.epochs == 2

    def test_back_compat_wrappers_agree_with_registries(self):
        from repro import available_architectures, available_condensers, list_datasets

        assert available_condensers() == CONDENSERS.available()
        assert available_architectures() == MODELS.available()
        assert list_datasets() == DATASETS.available()
