"""Parallel sweep executor: bit-identity, fault isolation, cache handoff.

The contract under test (see :mod:`repro.api.parallel`):

* the process backend is **bit-identical** to serial execution — same
  metrics, same derived seeds, same condensed-graph hashes — for any worker
  count and any dispatch order;
* a cell that raises, times out or kills its worker becomes a structured
  failed :class:`~repro.api.runner.RunRecord` under ``on_error="record"``
  while the other cells complete, and aborts the sweep under
  ``on_error="raise"``;
* workers receive the parent's base propagation chains (shard-aware cache
  handoff) and ship their cache counters back, merged onto
  ``SweepRecord.cache_stats``.

The fault-injection tests register throwaway condensers at runtime, which
only reach worker processes under the ``fork`` start method (workers forked
from the test process inherit the registry); they are skipped on platforms
without ``fork``.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import pickle
import time

import numpy as np
import pytest

from repro.api import (
    ExecutionSpec,
    RunRecord,
    SweepRecord,
    SweepSpec,
    run_sweep,
)
from repro.api.parallel import prepare_handoff, preferred_start_method
from repro.exceptions import SweepExecutionError
from repro.graph.blocked import process_scratch_dir
from repro.graph.cache import PropagationCache
from repro.registry import CONDENSERS

needs_fork = pytest.mark.skipif(
    preferred_start_method() != "fork",
    reason="in-test registered components reach workers only under fork",
)

#: Fields compared for bit-identity (hashes pin the full condensed arrays).
IDENTITY_FIELDS = (
    "clean_cta",
    "clean_asr",
    "attack_cta",
    "attack_asr",
    "defense_cta",
    "defense_asr",
    "defense_cta_delta",
    "defense_asr_delta",
    "poisoned_nodes",
    "condensed_nodes",
    "condensed_hash",
    "attack_condensed_hash",
    "status",
)


def smoke_sweep(seed: int = 7) -> SweepSpec:
    """The 2×2×1 acceptance grid: gcond/gc-sntk × bgc/naive × prune on tiny."""
    return SweepSpec.from_dict(
        {
            "name": "parallel-smoke",
            "seed": seed,
            "base": {
                "dataset": "tiny",
                "condenser": {"overrides": {"epochs": 2, "ratio": 0.2}},
                "trigger": {"overrides": {"trigger_size": 2}},
                "evaluation": {"overrides": {"epochs": 10}},
            },
            "axes": {
                "condenser": ["gcond", "gc-sntk"],
                "attack": [
                    {"name": "bgc", "overrides": {"epochs": 2, "poison_ratio": 0.2}},
                    {"name": "naive", "overrides": {"poison_fraction": 0.4}},
                ],
                "defense": ["prune"],
            },
        }
    )


def assert_records_identical(a: RunRecord, b: RunRecord) -> None:
    """Exact equality of every identity field (NaN matches NaN)."""
    assert a.spec == b.spec, f"cell {a.cell_index}: specs differ"
    assert a.spec.seed == b.spec.seed
    assert a.cell_index == b.cell_index
    for name in IDENTITY_FIELDS:
        va, vb = getattr(a, name), getattr(b, name)
        if isinstance(va, float) and isinstance(vb, float):
            if math.isnan(va) and math.isnan(vb):
                continue
            assert va == vb, f"cell {a.cell_index}: {name} {va!r} != {vb!r}"
        else:
            assert va == vb, f"cell {a.cell_index}: {name} {va!r} != {vb!r}"


@pytest.fixture(scope="module")
def serial_baseline():
    """One serial run of the smoke grid, shared across the identity tests."""
    return run_sweep(smoke_sweep())


def fault_sweep(condensers, **execution) -> SweepSpec:
    """A tiny attack-free grid sweeping the given condenser names."""
    return SweepSpec.from_dict(
        {
            "name": "fault-grid",
            "seed": 3,
            "base": {
                "dataset": "tiny",
                "condenser": {"overrides": {"epochs": 2, "ratio": 0.2}},
                "evaluation": {"overrides": {"epochs": 5}},
            },
            "axes": {"condenser": list(condensers)},
            "execution": execution or None,
        }
    )


@pytest.fixture
def crashing_condenser():
    """A condenser that always raises (registered for this test only)."""

    class _Crashing:
        def condense(self, graph, rng):
            raise RuntimeError("deliberate crash-test failure")

    CONDENSERS.register("crash-test", factory=lambda **kwargs: _Crashing())
    yield "crash-test"
    CONDENSERS.unregister("crash-test")


@pytest.fixture
def sleeping_condenser():
    """A condenser that hangs far past any test timeout."""

    class _Sleeping:
        def condense(self, graph, rng):
            time.sleep(60.0)

    CONDENSERS.register("sleep-test", factory=lambda **kwargs: _Sleeping())
    yield "sleep-test"
    CONDENSERS.unregister("sleep-test")


@pytest.fixture
def dying_condenser():
    """A condenser that kills its worker process outright (no exception)."""

    class _Dying:
        def condense(self, graph, rng):
            os._exit(3)

    CONDENSERS.register("die-test", factory=lambda **kwargs: _Dying())
    yield "die-test"
    CONDENSERS.unregister("die-test")


class TestParallelBitIdentity:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_worker_count_never_changes_results(self, workers, serial_baseline):
        records = run_sweep(
            smoke_sweep(),
            execution=ExecutionSpec(backend="process", workers=workers),
        )
        assert len(records) == len(serial_baseline)
        for a, b in zip(serial_baseline, records):
            assert_records_identical(a, b)

    def test_shuffled_dispatch_is_bit_identical(self, serial_baseline):
        records = run_sweep(
            smoke_sweep(),
            order=[3, 1, 0, 2],
            execution=ExecutionSpec(backend="process", workers=2),
        )
        assert [record.cell_index for record in records] == [0, 1, 2, 3]
        for a, b in zip(serial_baseline, records):
            assert_records_identical(a, b)

    def test_spec_execution_block_drives_backend(self, serial_baseline):
        """A sweep whose own execution block says process/2 needs no kwarg."""
        payload = smoke_sweep().to_dict()
        payload["execution"] = {"backend": "process", "workers": 2}
        records = run_sweep(SweepSpec.from_dict(payload))
        for a, b in zip(serial_baseline, records):
            assert_records_identical(a, b)

    def test_condensed_hashes_are_populated(self, serial_baseline):
        for record in serial_baseline:
            assert record.condensed_hash is not None
            assert record.attack_condensed_hash is not None

    def test_on_record_sees_every_cell(self):
        seen = []
        run_sweep(
            smoke_sweep(),
            execution=ExecutionSpec(backend="process", workers=2),
            on_record=lambda record: seen.append(record.cell_index),
        )
        assert sorted(seen) == [0, 1, 2, 3]

    def test_no_worker_processes_leak(self):
        run_sweep(smoke_sweep(), execution=ExecutionSpec(backend="process", workers=4))
        leaked = [
            child
            for child in multiprocessing.active_children()
            if child.name.startswith("repro-sweep-")
        ]
        assert not leaked


class TestFaultInjection:
    @needs_fork
    def test_record_mode_isolates_a_crashing_cell(self, crashing_condenser):
        records = run_sweep(
            fault_sweep(["gcond", crashing_condenser]),
            execution=ExecutionSpec(backend="process", workers=2, on_error="record"),
        )
        assert isinstance(records, SweepRecord)
        ok, failed = records[0], records[1]
        assert ok.ok and 0.0 <= ok.clean_cta <= 1.0
        assert failed.status == "failed"
        assert failed.error["type"] == "RuntimeError"
        assert "deliberate crash-test failure" in failed.error["message"]
        assert "RuntimeError" in failed.error["traceback"]
        assert failed.cell_index == 1
        assert records.failed == [failed]
        assert math.isnan(failed.clean_cta)
        assert "cell" in failed.timings

    def test_record_mode_serial_backend(self, crashing_condenser):
        records = run_sweep(
            fault_sweep(["gcond", crashing_condenser]),
            execution=ExecutionSpec(backend="serial", on_error="record"),
        )
        assert records[0].ok
        assert records[1].error["type"] == "RuntimeError"
        assert "deliberate crash-test failure" in records[1].error["traceback"]

    @needs_fork
    def test_raise_mode_process_backend_aborts(self, crashing_condenser):
        with pytest.raises(SweepExecutionError, match="deliberate crash-test") as info:
            run_sweep(
                fault_sweep([crashing_condenser, "gcond"]),
                execution=ExecutionSpec(backend="process", workers=2, on_error="raise"),
            )
        assert info.value.record.error["type"] == "RuntimeError"

    def test_raise_mode_serial_propagates_original_exception(self, crashing_condenser):
        with pytest.raises(RuntimeError, match="deliberate crash-test failure"):
            run_sweep(
                fault_sweep([crashing_condenser, "gcond"]),
                execution=ExecutionSpec(backend="serial", on_error="raise"),
            )

    @needs_fork
    def test_timeout_terminates_and_records_the_cell(self, sleeping_condenser):
        start = time.perf_counter()
        records = run_sweep(
            fault_sweep(["gcond", sleeping_condenser]),
            execution=ExecutionSpec(
                backend="process", workers=2, timeout=1.0, on_error="record"
            ),
        )
        elapsed = time.perf_counter() - start
        assert elapsed < 30.0, "timed-out cell was not terminated"
        assert records[0].ok
        assert records[1].status == "failed"
        assert records[1].error["type"] == "CellTimeout"
        assert "1.0" in records[1].error["message"]
        assert records[1].timings["cell"] >= 1.0
        leaked = [
            child
            for child in multiprocessing.active_children()
            if child.name.startswith("repro-sweep-")
        ]
        assert not leaked

    @needs_fork
    def test_timeout_under_raise_mode_aborts(self, sleeping_condenser):
        with pytest.raises(SweepExecutionError, match="CellTimeout"):
            run_sweep(
                fault_sweep([sleeping_condenser]),
                execution=ExecutionSpec(
                    backend="process", workers=1, timeout=0.5, on_error="raise"
                ),
            )

    @needs_fork
    def test_worker_death_without_result_is_recorded(self, dying_condenser):
        records = run_sweep(
            fault_sweep(["gcond", dying_condenser]),
            execution=ExecutionSpec(backend="process", workers=2, on_error="record"),
        )
        assert records[0].ok
        assert records[1].error["type"] == "WorkerCrash"
        assert "3" in records[1].error["message"]

    def test_unloadable_dataset_is_recorded_not_fatal(self):
        """A dataset that fails to load fails its cells, not the sweep."""
        sweep = SweepSpec.from_dict(
            {
                "name": "bad-dataset",
                "seed": 0,
                "base": {
                    "condenser": {"name": "gcond", "overrides": {"epochs": 2, "ratio": 0.2}},
                    "evaluation": {"overrides": {"epochs": 5}},
                },
                "axes": {"dataset": ["tiny", "no-such-dataset"]},
            }
        )
        records = run_sweep(
            sweep,
            execution=ExecutionSpec(backend="process", workers=2, on_error="record"),
        )
        assert records[0].ok
        assert records[1].status == "failed"
        assert records[1].error["type"] == "DatasetError"


class TestScratchCleanup:
    @needs_fork
    def test_dead_worker_scratch_removed_despite_env_divergence(
        self, tmp_path, monkeypatch
    ):
        """Crash cleanup targets the root resolved at sweep start.

        Regression: cleanup used to re-resolve ``scratch_root()`` from the
        parent's environment at cleanup time, so a worker whose environment
        diverged (here: a cell mutating ``REPRO_BLOCKED_DIR`` mid-run) wrote
        its block files where cleanup never looked, leaking them.  The
        executor now resolves the root once at sweep start, pins it inside
        every worker, and passes it to the crash-path cleanup.
        """
        parent_root = tmp_path / "parent-scratch"
        rogue_root = tmp_path / "rogue-scratch"
        parent_root.mkdir()
        rogue_root.mkdir()
        monkeypatch.setenv("REPRO_BLOCKED_DIR", str(parent_root))

        class _ScratchLeaker:
            def condense(self, graph, rng):
                # Diverge the worker's environment *after* the sweep pinned
                # its root: scratch must still land under parent_root.
                os.environ["REPRO_BLOCKED_DIR"] = str(rogue_root)
                scratch = process_scratch_dir()
                os.makedirs(scratch, exist_ok=True)
                with open(os.path.join(scratch, "leak.bin"), "wb") as handle:
                    handle.write(b"\0" * 4096)
                os._exit(1)

        CONDENSERS.register(
            "scratch-leak-test", factory=lambda **kwargs: _ScratchLeaker()
        )
        try:
            records = run_sweep(
                fault_sweep(["gcond", "scratch-leak-test"]),
                execution=ExecutionSpec(
                    backend="process", workers=2, on_error="record"
                ),
            )
        finally:
            CONDENSERS.unregister("scratch-leak-test")
        assert records[0].ok
        assert records[1].error["type"] == "WorkerCrash"
        leaked = [
            str(path)
            for root in (parent_root, rogue_root)
            for path in root.glob("repro-blocked-*")
        ]
        assert leaked == [], f"blocked scratch leaked: {leaked}"


class TestCacheHandoff:
    def test_sweep_record_carries_merged_worker_stats(self):
        records = run_sweep(
            smoke_sweep(),
            execution=ExecutionSpec(backend="process", workers=2),
        )
        stats = records.cache_stats
        assert stats["contributors"] == 5  # 4 cells + the parent's handoff delta
        assert stats["hits"] > 0
        assert stats["incremental_updates"] > 0  # workers patched, not recomputed

    def test_serial_backend_reports_cache_delta(self):
        records = run_sweep(smoke_sweep())
        assert records.cache_stats["contributors"] == 1
        assert records.cache_stats["misses"] >= 0

    def test_prepare_handoff_skips_the_pickle_under_fork(self):
        """Forked workers inherit the warmed cache; no payload is built."""
        specs = smoke_sweep().expand()
        graphs, warm = prepare_handoff(specs, start_method="fork")
        assert graphs and warm == {}

    def test_prepare_handoff_exports_pickled_base_chains(self):
        """The spawn path's payload: pickled base chains, installable cold."""
        specs = smoke_sweep().expand()
        graphs, warm = prepare_handoff(specs, start_method="spawn")
        (key,) = graphs  # one dataset shard in the grid
        payload = pickle.loads(warm[key])
        assert payload["normalized"] is not None
        assert set(payload["hops"]) >= {0, 1, 2}  # gcond's num_hops=2 chain

        # A fresh cache warm-started from the payload serves the chain as
        # pure hits: no worker re-pays base propagation.
        cache = PropagationCache()
        cache.warm_start(graphs[key], payload)
        misses_before = cache.misses
        product = cache.propagated(graphs[key], 2)
        assert cache.misses == misses_before
        assert cache.hits >= 1
        np.testing.assert_array_equal(
            product, pickle.loads(warm[key])["hops"][2]
        )
