"""Unit tests for the baseline attacks: Naive Poison, GTA and DOORPING."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attack import GTAAttack, DoorpingAttack, NaivePoison
from repro.attack.baselines.doorping import DoorpingConfig
from repro.attack.baselines.gta import GTAConfig
from repro.attack.naive import NaivePoisonConfig
from repro.attack.trigger import TriggerConfig
from repro.attack.selection import SelectionConfig
from repro.condensation import CondensationConfig, make_condenser
from repro.exceptions import AttackError
from repro.utils.seed import new_rng


def fast_condenser():
    return make_condenser("gcond-x", CondensationConfig(epochs=3, ratio=0.3))


FAST_TRIGGER = TriggerConfig(trigger_size=2, hidden=16)
FAST_SELECTION = SelectionConfig(num_clusters=2, selector_epochs=15)


class TestNaivePoison:
    def test_poisons_condensed_graph(self, small_graph, rng):
        attack = NaivePoison(NaivePoisonConfig(target_class=0, poison_fraction=0.3))
        poisoned, pattern = attack.run(small_graph, fast_condenser(), rng)
        assert "naive-poison" in poisoned.method
        assert pattern.shape == (small_graph.num_features,)
        assert np.any(poisoned.labels == 0)

    def test_poisoned_graph_differs_from_clean(self, small_graph):
        condenser = fast_condenser()
        clean = condenser.condense(small_graph, new_rng(3))
        attack = NaivePoison(NaivePoisonConfig(poison_fraction=0.3))
        poisoned, _ = attack.run(small_graph, fast_condenser(), new_rng(3))
        assert not np.allclose(clean.features, poisoned.features)

    def test_attach_universal_trigger(self, small_graph):
        pattern = np.zeros(small_graph.num_features)
        pattern[0] = 1.0
        triggered = NaivePoison.attach_universal_trigger(
            small_graph, small_graph.split.test[:5], pattern, mix=1.0
        )
        np.testing.assert_allclose(
            triggered.features[small_graph.split.test[0]], pattern
        )
        # Other nodes untouched.
        untouched = np.setdiff1d(np.arange(small_graph.num_nodes), small_graph.split.test[:5])
        np.testing.assert_allclose(
            triggered.features[untouched], small_graph.features[untouched]
        )

    def test_invalid_config(self):
        with pytest.raises(AttackError):
            NaivePoisonConfig(num_trigger_nodes=0)
        with pytest.raises(AttackError):
            NaivePoisonConfig(poison_fraction=0.0)


class TestGTA:
    def test_run_produces_condensed_graph_and_generator(self, small_graph, rng):
        attack = GTAAttack(
            GTAConfig(
                poison_ratio=0.3,
                generator_epochs=3,
                update_batch_size=4,
                surrogate_steps=20,
                trigger=FAST_TRIGGER,
                selection=FAST_SELECTION,
            )
        )
        result = attack.run(small_graph, fast_condenser(), rng)
        assert result.condensed.num_nodes >= small_graph.num_classes
        assert result.poisoned_nodes.size >= 1
        # The generator must be usable by the evaluation pipeline.
        from repro.attack.trigger import generate_hard_triggers

        features, adjacency = generate_hard_triggers(
            result.generator, small_graph.adjacency, small_graph.features, np.array([0, 1])
        )
        assert features.shape[0] == 2

    def test_invalid_config(self):
        with pytest.raises(AttackError):
            GTAConfig(poison_ratio=None, poison_number=None)
        with pytest.raises(AttackError):
            GTAConfig(generator_epochs=0)


class TestDoorping:
    def test_run_produces_universal_trigger(self, small_graph, rng):
        attack = DoorpingAttack(
            DoorpingConfig(
                poison_ratio=0.3,
                epochs=3,
                trigger_steps=1,
                update_batch_size=4,
                surrogate_steps=10,
                trigger=FAST_TRIGGER,
                selection=FAST_SELECTION,
            )
        )
        result = attack.run(small_graph, fast_condenser(), rng)
        assert result.condensed.num_nodes >= small_graph.num_classes
        assert len(result.history) == 3
        # Universal: the same trigger for every node.
        from repro.attack.trigger import generate_hard_triggers

        features, _ = generate_hard_triggers(
            result.generator, small_graph.adjacency, small_graph.features, np.array([0, 5])
        )
        np.testing.assert_allclose(features[0], features[1])

    def test_trigger_is_updated_during_condensation(self, small_graph, rng):
        config = DoorpingConfig(
            poison_ratio=0.3,
            epochs=3,
            trigger_steps=1,
            update_batch_size=4,
            surrogate_steps=10,
            trigger=FAST_TRIGGER,
            selection=FAST_SELECTION,
        )
        attack = DoorpingAttack(config)
        initial_seed_generator = new_rng(42)
        from repro.attack.trigger import UniversalTriggerGenerator

        untouched = UniversalTriggerGenerator(
            small_graph.num_features, initial_seed_generator, FAST_TRIGGER
        )
        result = attack.run(small_graph, fast_condenser(), new_rng(42))
        assert not np.allclose(
            result.generator.trigger_features.data, untouched.trigger_features.data
        )

    def test_invalid_config(self):
        with pytest.raises(AttackError):
            DoorpingConfig(poison_ratio=None, poison_number=None)
        with pytest.raises(AttackError):
            DoorpingConfig(epochs=0)
