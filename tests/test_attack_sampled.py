"""Sampled search-space attacks: codec, equivalence, determinism, scale.

The contracts under test (see :mod:`repro.attack.sampled` and
:mod:`repro.attack.injection`):

* the triangular pair codec is an exact bijection between linear indices and
  ``(row < col)`` node pairs at any graph size, including the six-figure
  regime where the decode goes through a float square root;
* a sampled block that covers the full candidate space is **bit-identical**
  to the pinned exhaustive reference — same flips, same condensed graph,
  same trigger pattern — and both consume the caller's generator identically;
* the same seed produces the same poisoned result, serially and under the
  process backend with ``workers=2``;
* one sampled step on the 100k-node flickr stand-in never materialises the
  ~5·10⁹-pair candidate space (peak-RSS asserted);
* injected node features stay inside the per-dimension envelope of the real
  feature matrix.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st

from helpers import build_small_graph
from test_api_parallel import assert_records_identical
from repro.api import ExecutionSpec, SweepSpec, run_sweep
from repro.attack.injection import InjectionConfig, NodeInjectionAttack
from repro.attack.sampled import (
    MAX_EXHAUSTIVE_PAIRS,
    SampledEdgeAttack,
    SampledEdgeConfig,
    decode_pairs,
    edges_exist,
    encode_pairs,
    num_candidate_pairs,
)
from repro.datasets import load_dataset
from repro.exceptions import AttackError, GraphValidationError
from repro.graph.subgraph import append_node_edges, toggle_edges
from repro.registry import ATTACKS, CONDENSERS
from repro.utils.memory import current_rss_bytes, peak_rss_bytes, reset_peak_rss
from repro.utils.seed import new_rng


# ------------------------------------------------------------------ #
# Pair codec
# ------------------------------------------------------------------ #
class TestPairCodec:
    @pytest.mark.parametrize("n", [2, 3, 4, 7, 12])
    def test_exhaustive_roundtrip_small(self, n):
        linear = np.arange(num_candidate_pairs(n), dtype=np.int64)
        rows, cols = decode_pairs(linear, n)
        assert np.all(rows < cols)
        assert rows.min() >= 0 and cols.max() < n
        # Every pair distinct, and encoding inverts the decode exactly.
        np.testing.assert_array_equal(encode_pairs(rows, cols, n), linear)

    def test_first_and_last_pairs(self):
        n = 257
        rows, cols = decode_pairs(np.array([0, num_candidate_pairs(n) - 1]), n)
        np.testing.assert_array_equal(rows, [0, n - 2])
        np.testing.assert_array_equal(cols, [1, n - 1])

    @given(
        n=st.integers(min_value=2, max_value=500),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_random_roundtrip(self, n, seed):
        generator = new_rng(seed)
        total = num_candidate_pairs(n)
        linear = generator.integers(0, total, size=min(total, 64), dtype=np.int64)
        rows, cols = decode_pairs(linear, n)
        assert np.all((0 <= rows) & (rows < cols) & (cols < n))
        np.testing.assert_array_equal(encode_pairs(rows, cols, n), linear)

    def test_six_figure_n_roundtrip(self):
        """The float decode stays exact where the RSS test operates (n=100k)."""
        n = 100_000
        generator = new_rng(0)
        total = num_candidate_pairs(n)
        linear = generator.integers(0, total, size=4096, dtype=np.int64)
        # Strip boundaries are where float rounding would bite: include the
        # first/last index of a spread of rows explicitly.
        strip_rows = np.array([0, 1, 2, 777, 50_000, n - 3, n - 2], dtype=np.int64)
        starts = encode_pairs(strip_rows, strip_rows + 1, n)
        linear = np.concatenate([linear, starts, starts - 1, [0, total - 1]])
        linear = linear[(linear >= 0) & (linear < total)]
        rows, cols = decode_pairs(linear, n)
        assert np.all((0 <= rows) & (rows < cols) & (cols < n))
        np.testing.assert_array_equal(encode_pairs(rows, cols, n), linear)

    def test_encode_rejects_unordered_pairs(self):
        with pytest.raises(AttackError, match="rows < cols"):
            encode_pairs(np.array([3]), np.array([3]), 10)

    def test_decode_rejects_out_of_range(self):
        with pytest.raises(AttackError, match="out of range"):
            decode_pairs(np.array([num_candidate_pairs(10)]), 10)
        with pytest.raises(AttackError, match="out of range"):
            decode_pairs(np.array([-1]), 10)


# ------------------------------------------------------------------ #
# Graph-edit helpers
# ------------------------------------------------------------------ #
class TestToggleEdges:
    def _ring(self, n=6):
        rows = np.arange(n)
        cols = (rows + 1) % n
        coo = sp.coo_matrix(
            (np.ones(2 * n), (np.concatenate([rows, cols]), np.concatenate([cols, rows]))),
            shape=(n, n),
        )
        return coo.tocsr()

    def test_add_and_remove(self):
        adjacency = self._ring()
        toggled, changed = toggle_edges(adjacency, np.array([0, 0]), np.array([1, 3]))
        # (0, 1) existed and is removed; (0, 3) did not and is added.
        assert toggled[0, 1] == 0.0 and toggled[1, 0] == 0.0
        assert toggled[0, 3] == 1.0 and toggled[3, 0] == 1.0
        np.testing.assert_array_equal(changed, [0, 1, 3])
        assert (abs(toggled - toggled.T)).max() == 0.0

    def test_double_toggle_is_identity(self):
        adjacency = self._ring()
        once, _ = toggle_edges(adjacency, np.array([0, 2]), np.array([1, 5]))
        twice, _ = toggle_edges(once, np.array([0, 2]), np.array([1, 5]))
        assert (abs(twice - adjacency)).max() == 0.0

    def test_removed_edges_leave_no_explicit_zeros(self):
        toggled, _ = toggle_edges(self._ring(), np.array([0]), np.array([1]))
        assert 0.0 not in toggled.data

    def test_validation(self):
        adjacency = self._ring()
        with pytest.raises(GraphValidationError, match="self-loop"):
            toggle_edges(adjacency, np.array([1]), np.array([1]))
        with pytest.raises(GraphValidationError, match="duplicate"):
            toggle_edges(adjacency, np.array([0, 1]), np.array([1, 0]))
        with pytest.raises(GraphValidationError, match="range"):
            toggle_edges(adjacency, np.array([0]), np.array([6]))

    def test_edges_exist(self):
        adjacency = self._ring()
        existing = edges_exist(adjacency, np.array([0, 0]), np.array([1, 3]))
        np.testing.assert_array_equal(existing, [True, False])
        assert edges_exist(adjacency, np.empty(0, np.int64), np.empty(0, np.int64)).size == 0


class TestAppendNodeEdges:
    def test_appended_nodes_wire_to_hosts_only(self):
        adjacency = sp.csr_matrix(np.eye(4, k=1) + np.eye(4, k=-1))
        hosts = np.array([[0, 2], [1, 3]])
        expanded, changed = append_node_edges(adjacency, hosts)
        assert expanded.shape == (6, 6)
        np.testing.assert_array_equal(changed, [0, 1, 2, 3])
        assert expanded[4, 0] == 1.0 and expanded[0, 4] == 1.0
        assert expanded[4, 2] == 1.0 and expanded[5, 1] == 1.0
        # Injected nodes never connect to each other.
        assert expanded[4, 5] == 0.0 and expanded[5, 4] == 0.0
        # The original block is untouched.
        assert (abs(expanded[:4, :4] - adjacency)).max() == 0.0

    def test_validation(self):
        adjacency = sp.csr_matrix(np.eye(3, k=1) + np.eye(3, k=-1))
        with pytest.raises(GraphValidationError, match="range"):
            append_node_edges(adjacency, np.array([[0, 3]]))
        with pytest.raises(GraphValidationError, match="duplicate hosts"):
            append_node_edges(adjacency, np.array([[1, 1]]))
        with pytest.raises(GraphValidationError, match="shape"):
            append_node_edges(adjacency, np.array([0, 1]))


# ------------------------------------------------------------------ #
# Registration
# ------------------------------------------------------------------ #
class TestRegistration:
    def test_both_attackers_are_registered(self):
        known = ATTACKS.known()
        assert "prbcd" in known and "injection" in known

    @pytest.mark.parametrize(
        ("name", "cls"),
        [
            ("prbcd", SampledEdgeAttack),
            ("sampled-edge", SampledEdgeAttack),
            ("injection", NodeInjectionAttack),
            ("node-injection", NodeInjectionAttack),
        ],
    )
    def test_registry_builds_with_overrides(self, name, cls):
        attack = ATTACKS.build(name)
        assert isinstance(attack, cls)

    def test_config_validation(self):
        with pytest.raises(AttackError):
            SampledEdgeConfig(edge_budget=0)
        with pytest.raises(AttackError):
            SampledEdgeConfig(block_size=0)
        with pytest.raises(AttackError):
            SampledEdgeConfig(poison_ratio=None, poison_number=None)
        with pytest.raises(AttackError):
            InjectionConfig(num_injected=0)
        with pytest.raises(AttackError):
            InjectionConfig(feature_lr=0.0)


# ------------------------------------------------------------------ #
# Equivalence against the dense reference + determinism
# ------------------------------------------------------------------ #
def _tiny_condenser():
    return CONDENSERS.build("gcond", epochs=2, ratio=0.25)


def _fast_kwargs(**overrides):
    base = dict(
        poison_ratio=0.2,
        edge_budget=4,
        flip_steps=2,
        surrogate_steps=10,
    )
    base.update(overrides)
    return base


def assert_condensed_identical(a, b):
    np.testing.assert_array_equal(a.features, b.features)
    np.testing.assert_array_equal(a.labels, b.labels)
    np.testing.assert_array_equal(a.adjacency, b.adjacency)
    assert a.metadata == b.metadata


class TestCoveringBlockEquivalence:
    def test_covering_block_matches_exhaustive_reference(self, small_graph):
        """block_size ≥ total degenerates to the dense enumeration, bit for bit."""
        total = num_candidate_pairs(small_graph.num_nodes)
        covering = SampledEdgeAttack(
            SampledEdgeConfig(**_fast_kwargs(block_size=total))
        )
        exhaustive = SampledEdgeAttack(
            SampledEdgeConfig(**_fast_kwargs(exhaustive=True))
        )
        condensed_a, pattern_a = covering.run(small_graph, _tiny_condenser(), new_rng(11))
        condensed_b, pattern_b = exhaustive.run(small_graph, _tiny_condenser(), new_rng(11))
        assert_condensed_identical(condensed_a, condensed_b)
        np.testing.assert_array_equal(pattern_a, pattern_b)
        # Bit-identity subsumes the acceptance tolerance, but state it anyway.
        np.testing.assert_allclose(pattern_a, pattern_b, atol=1e-10)

    def test_covering_block_proposes_identical_flips(self, small_graph):
        total = num_candidate_pairs(small_graph.num_nodes)
        weight = new_rng(5).normal(
            size=(small_graph.num_features, small_graph.num_classes)
        )
        train = small_graph.split.train
        proposals = []
        for config in (
            SampledEdgeConfig(**_fast_kwargs(block_size=total)),
            SampledEdgeConfig(**_fast_kwargs(exhaustive=True)),
        ):
            attack = SampledEdgeAttack(config)
            proposals.append(
                attack.propose_flips(
                    small_graph, small_graph.labels, train, weight, new_rng(3), quota=4
                )
            )
        assert proposals[0] == proposals[1]
        assert len(proposals[0]) <= 4

    def test_sampled_block_stays_within_budget(self, small_graph):
        attack = SampledEdgeAttack(
            SampledEdgeConfig(**_fast_kwargs(block_size=64, edge_budget=3))
        )
        condensed, pattern = attack.run(small_graph, _tiny_condenser(), new_rng(11))
        assert condensed.metadata["flipped_edges"] <= 3
        assert pattern.shape == (small_graph.num_features,)

    def test_exhaustive_refused_beyond_limit(self):
        attack = SampledEdgeAttack(SampledEdgeConfig(**_fast_kwargs(exhaustive=True)))
        with pytest.raises(AttackError, match="refused"):
            attack._sample_block(new_rng(0), MAX_EXHAUSTIVE_PAIRS + 1)

    def test_covering_block_skips_the_limit_draw_consistently(self, small_graph):
        """Neither degenerate path consumes the step generator."""
        total = num_candidate_pairs(small_graph.num_nodes)
        for config in (
            SampledEdgeConfig(**_fast_kwargs(block_size=total)),
            SampledEdgeConfig(**_fast_kwargs(exhaustive=True)),
        ):
            step_rng = new_rng(123)
            before = step_rng.bit_generator.state
            SampledEdgeAttack(config)._sample_block(step_rng, total)
            assert step_rng.bit_generator.state == before


class TestSameSeedDeterminism:
    def test_prbcd_same_seed_bit_identity(self, small_graph):
        attack = SampledEdgeAttack(SampledEdgeConfig(**_fast_kwargs(block_size=64)))
        condensed_a, pattern_a = attack.run(small_graph, _tiny_condenser(), new_rng(7))
        condensed_b, pattern_b = attack.run(small_graph, _tiny_condenser(), new_rng(7))
        assert_condensed_identical(condensed_a, condensed_b)
        np.testing.assert_array_equal(pattern_a, pattern_b)

    def test_injection_same_seed_bit_identity(self, small_graph):
        attack = NodeInjectionAttack(
            InjectionConfig(num_injected=2, feature_steps=2, surrogate_steps=10)
        )
        condensed_a, pattern_a = attack.run(small_graph, _tiny_condenser(), new_rng(7))
        condensed_b, pattern_b = attack.run(small_graph, _tiny_condenser(), new_rng(7))
        assert_condensed_identical(condensed_a, condensed_b)
        np.testing.assert_array_equal(pattern_a, pattern_b)

    def test_different_seeds_differ(self, small_graph):
        attack = SampledEdgeAttack(SampledEdgeConfig(**_fast_kwargs(block_size=64)))
        condensed_a, _ = attack.run(small_graph, _tiny_condenser(), new_rng(7))
        condensed_b, _ = attack.run(small_graph, _tiny_condenser(), new_rng(8))
        assert not np.array_equal(condensed_a.features, condensed_b.features)


# ------------------------------------------------------------------ #
# JSON sweep integration: serial vs process backend bit-identity
# ------------------------------------------------------------------ #
def sampled_sweep(seed: int = 7) -> SweepSpec:
    """Both new attackers as plain JSON axis entries — zero call-site changes."""
    return SweepSpec.from_dict(
        {
            "name": "sampled-smoke",
            "seed": seed,
            "base": {
                "dataset": "tiny",
                "condenser": {
                    "name": "gcond",
                    "overrides": {"epochs": 2, "ratio": 0.2},
                },
                "evaluation": {"overrides": {"epochs": 10}},
            },
            "axes": {
                "attack": [
                    {
                        "name": "prbcd",
                        "overrides": {
                            "poison_ratio": 0.2,
                            "edge_budget": 4,
                            "block_size": 64,
                            "flip_steps": 2,
                            "surrogate_steps": 10,
                        },
                    },
                    {
                        "name": "injection",
                        "overrides": {
                            "num_injected": 2,
                            "feature_steps": 2,
                            "surrogate_steps": 10,
                        },
                    },
                ],
            },
        }
    )


class TestSweepIntegration:
    def test_serial_vs_two_workers_bit_identical(self):
        serial = run_sweep(sampled_sweep())
        parallel = run_sweep(
            sampled_sweep(),
            execution=ExecutionSpec(backend="process", workers=2),
        )
        assert len(serial) == len(parallel) == 2
        for a, b in zip(serial, parallel):
            assert_records_identical(a, b)
        for record in serial:
            assert record.ok
            assert record.poisoned_nodes >= 1
            assert 0.0 <= record.attack_asr <= 1.0


# ------------------------------------------------------------------ #
# Injection feature bounds
# ------------------------------------------------------------------ #
class TestInjectionBounds:
    def test_pattern_respects_feature_envelope(self, small_graph):
        attack = NodeInjectionAttack(
            InjectionConfig(num_injected=3, feature_steps=3, surrogate_steps=10)
        )
        condensed, pattern = attack.run(small_graph, _tiny_condenser(), new_rng(4))
        lower = np.asarray(small_graph.features).min(axis=0)
        upper = np.asarray(small_graph.features).max(axis=0)
        assert np.all(pattern >= lower - 1e-12)
        assert np.all(pattern <= upper + 1e-12)
        assert condensed.metadata["poisoned_nodes"] == 3.0

    def test_injected_view_shape_and_split(self, small_graph):
        attack = NodeInjectionAttack(InjectionConfig(num_injected=2, edges_per_node=2))
        hosts = attack._choose_hosts(small_graph, new_rng(1))
        features = np.zeros((2, small_graph.num_features))
        view = attack._injected_view(small_graph, features, hosts)
        n = small_graph.num_nodes
        assert view.num_nodes == n + 2
        np.testing.assert_array_equal(
            view.labels[n:], [attack.config.target_class] * 2
        )
        assert set(view.split.train) >= {n, n + 1}
        np.testing.assert_array_equal(view.split.test, small_graph.split.test)

    def test_target_class_out_of_range_rejected(self, small_graph):
        attack = NodeInjectionAttack(InjectionConfig(target_class=99))
        with pytest.raises(AttackError, match="target_class"):
            attack.run(small_graph, _tiny_condenser(), new_rng(0))


# ------------------------------------------------------------------ #
# Scale: one step at 100k nodes without the dense candidate space
# ------------------------------------------------------------------ #
class TestFlickrScaleStep:
    def test_sampled_step_peak_rss_is_bounded(self):
        """One propose_flips on the flickr stand-in (~5·10⁹ candidate pairs).

        The dense pair space would be ~40 GB of scores alone; the ceiling
        below also rules out any ``(n, F)`` chain materialisation (400 MB at
        100k × 500 float64).  The chains are pre-warmed outside the measured
        region — the property under test is the *step*, not the cache fill.
        """
        graph = load_dataset("flickr", seed=0)
        working = graph.training_view() if graph.inductive else graph
        config = SampledEdgeConfig(block_size=2048, flip_steps=1, surrogate_steps=1)
        attack = SampledEdgeAttack(config)
        from repro.graph.cache import get_default_cache

        cache = get_default_cache()
        cache.propagated(working, config.surrogate_hops)
        cache.propagated(working, config.surrogate_hops - 1)
        weight = new_rng(2).normal(
            scale=0.1, size=(working.num_features, working.num_classes)
        )
        train = working.split.train

        if not reset_peak_rss():
            pytest.skip("peak-RSS reset unsupported on this platform")
        baseline = current_rss_bytes()
        chosen = attack.propose_flips(
            working, working.labels, train, weight, new_rng(9), quota=8
        )
        peak = peak_rss_bytes()
        assert peak is not None and baseline is not None
        ceiling = 320 * 1024 * 1024
        assert peak - baseline < ceiling, (
            f"sampled step grew peak RSS by {(peak - baseline) / 2**20:.0f} MiB "
            f"(ceiling {ceiling / 2**20:.0f} MiB) — something materialised a "
            "candidate-space- or graph-sized intermediate"
        )
        assert len(chosen) <= 8
        for linear, row, col in chosen:
            assert 0 <= row < col < working.num_nodes
