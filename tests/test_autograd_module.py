"""Unit tests for the Module system (parameter management, layers)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import Dropout, Linear, Module, Parameter, ReLU, Sequential, Tensor
from repro.autograd import functional as F
from repro.exceptions import AutogradError
from repro.utils.seed import new_rng


class TwoLayer(Module):
    def __init__(self, rng):
        super().__init__()
        self.fc1 = Linear(4, 8, rng=rng)
        self.fc2 = Linear(8, 2, rng=rng)
        self.scale = Parameter(np.ones(1), name="scale")

    def forward(self, x):
        return self.fc2(F.relu(self.fc1(x))) * self.scale


class TestModuleRegistration:
    def test_parameters_are_collected_recursively(self, rng):
        model = TwoLayer(rng)
        params = model.parameters()
        # fc1 (w, b) + fc2 (w, b) + scale
        assert len(params) == 5

    def test_named_parameters_have_qualified_names(self, rng):
        model = TwoLayer(rng)
        names = dict(model.named_parameters()).keys()
        assert "fc1.weight" in names
        assert "fc2.bias" in names
        assert "scale" in names

    def test_zero_grad_clears_all(self, rng):
        model = TwoLayer(rng)
        out = model(Tensor(rng.normal(size=(3, 4))))
        out.sum().backward()
        assert any(p.grad is not None for p in model.parameters())
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())

    def test_train_eval_propagates(self, rng):
        model = Sequential(Linear(3, 3, rng=rng), Dropout(0.5, rng), ReLU())
        model.eval()
        assert not model.training
        for layer in model:
            if isinstance(layer, Module):
                assert not layer.training
        model.train()
        assert model.training


class TestStateDict:
    def test_roundtrip(self, rng):
        model = TwoLayer(rng)
        state = model.state_dict()
        clone = TwoLayer(new_rng(999))
        clone.load_state_dict(state)
        x = Tensor(rng.normal(size=(2, 4)))
        np.testing.assert_allclose(model(x).data, clone(x).data)

    def test_state_dict_is_a_copy(self, rng):
        model = TwoLayer(rng)
        state = model.state_dict()
        state["fc1.weight"][:] = 0.0
        assert not np.allclose(model.fc1.weight.data, 0.0)

    def test_missing_key_raises(self, rng):
        model = TwoLayer(rng)
        state = model.state_dict()
        del state["scale"]
        with pytest.raises(AutogradError):
            model.load_state_dict(state)

    def test_shape_mismatch_raises(self, rng):
        model = TwoLayer(rng)
        state = model.state_dict()
        state["scale"] = np.ones(3)
        with pytest.raises(AutogradError):
            model.load_state_dict(state)


class TestLinear:
    def test_forward_shape(self, rng):
        layer = Linear(5, 7, rng=rng)
        out = layer(Tensor(rng.normal(size=(3, 5))))
        assert out.shape == (3, 7)

    def test_no_bias(self, rng):
        layer = Linear(5, 7, rng=rng, bias=False)
        assert len(layer.parameters()) == 1
        out = layer(Tensor(np.zeros((2, 5))))
        np.testing.assert_allclose(out.data, np.zeros((2, 7)))

    def test_glorot_scale(self, rng):
        layer = Linear(100, 100, rng=rng)
        limit = np.sqrt(6.0 / 200)
        assert np.abs(layer.weight.data).max() <= limit + 1e-12

    def test_gradients_flow_to_weight_and_bias(self, rng):
        layer = Linear(4, 3, rng=rng)
        out = layer(Tensor(rng.normal(size=(5, 4))))
        out.sum().backward()
        assert layer.weight.grad.shape == (4, 3)
        assert layer.bias.grad.shape == (3,)


class TestDropoutLayer:
    def test_invalid_rate(self, rng):
        with pytest.raises(AutogradError):
            Dropout(1.5, rng)

    def test_eval_identity(self, rng):
        layer = Dropout(0.9, rng)
        layer.eval()
        x = Tensor(np.ones((4, 4)))
        np.testing.assert_allclose(layer(x).data, x.data)


class TestSequential:
    def test_applies_in_order(self, rng):
        model = Sequential(Linear(3, 3, rng=rng), ReLU())
        x = Tensor(rng.normal(size=(2, 3)))
        manual = F.relu(model._layers[0](x))
        np.testing.assert_allclose(model(x).data, manual.data)

    def test_len_and_iter(self, rng):
        model = Sequential(Linear(3, 3, rng=rng), ReLU(), Linear(3, 2, rng=rng))
        assert len(model) == 3
        assert len(list(iter(model))) == 3

    def test_accepts_plain_callables(self, rng):
        model = Sequential(lambda x: x * 2.0, lambda x: x + 1.0)
        out = model(Tensor(np.ones((2, 2))))
        np.testing.assert_allclose(out.data, 3.0 * np.ones((2, 2)))
