"""Unit tests for the SGD and Adam optimisers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import Adam, SGD, Tensor
from repro.autograd.module import Parameter
from repro.exceptions import AutogradError


def quadratic_loss(param: Parameter, target: np.ndarray) -> Tensor:
    diff = param - Tensor(target)
    return (diff * diff).sum()


class TestOptimizerBase:
    def test_empty_parameter_list_raises(self):
        with pytest.raises(AutogradError):
            SGD([], lr=0.1)

    def test_non_positive_lr_raises(self):
        with pytest.raises(AutogradError):
            SGD([Parameter(np.ones(2))], lr=0.0)

    def test_zero_grad(self):
        p = Parameter(np.ones(3))
        optimizer = SGD([p], lr=0.1)
        quadratic_loss(p, np.zeros(3)).backward()
        assert p.grad is not None
        optimizer.zero_grad()
        assert p.grad is None

    def test_step_skips_parameters_without_grad(self):
        p = Parameter(np.ones(3))
        optimizer = SGD([p], lr=0.1)
        optimizer.step()  # no gradient accumulated; should be a no-op
        np.testing.assert_allclose(p.data, np.ones(3))


class TestSGD:
    def test_converges_on_quadratic(self):
        target = np.array([1.0, -2.0, 3.0])
        p = Parameter(np.zeros(3))
        optimizer = SGD([p], lr=0.1)
        for _ in range(200):
            optimizer.zero_grad()
            quadratic_loss(p, target).backward()
            optimizer.step()
        np.testing.assert_allclose(p.data, target, atol=1e-6)

    def test_momentum_accelerates(self):
        target = np.array([5.0])
        plain = Parameter(np.zeros(1))
        momentum = Parameter(np.zeros(1))
        opt_plain = SGD([plain], lr=0.01)
        opt_momentum = SGD([momentum], lr=0.01, momentum=0.9)
        for _ in range(50):
            for p, opt in ((plain, opt_plain), (momentum, opt_momentum)):
                opt.zero_grad()
                quadratic_loss(p, target).backward()
                opt.step()
        assert abs(momentum.data[0] - 5.0) < abs(plain.data[0] - 5.0)

    def test_weight_decay_shrinks_solution(self):
        target = np.array([10.0])
        decayed = Parameter(np.zeros(1))
        optimizer = SGD([decayed], lr=0.05, weight_decay=1.0)
        for _ in range(500):
            optimizer.zero_grad()
            quadratic_loss(decayed, target).backward()
            optimizer.step()
        assert 0.0 < decayed.data[0] < 10.0

    def test_invalid_momentum_raises(self):
        with pytest.raises(AutogradError):
            SGD([Parameter(np.ones(1))], lr=0.1, momentum=1.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        target = np.array([0.5, -1.5])
        p = Parameter(np.zeros(2))
        optimizer = Adam([p], lr=0.05)
        for _ in range(500):
            optimizer.zero_grad()
            quadratic_loss(p, target).backward()
            optimizer.step()
        np.testing.assert_allclose(p.data, target, atol=1e-4)

    def test_first_step_size_close_to_lr(self):
        p = Parameter(np.array([10.0]))
        optimizer = Adam([p], lr=0.1)
        optimizer.zero_grad()
        quadratic_loss(p, np.zeros(1)).backward()
        optimizer.step()
        assert abs(p.data[0] - 10.0) == pytest.approx(0.1, rel=1e-3)

    def test_invalid_betas_raise(self):
        with pytest.raises(AutogradError):
            Adam([Parameter(np.ones(1))], betas=(1.0, 0.999))

    def test_weight_decay_changes_solution(self):
        target = np.array([3.0])
        plain = Parameter(np.zeros(1))
        decayed = Parameter(np.zeros(1))
        opt_plain = Adam([plain], lr=0.05)
        opt_decayed = Adam([decayed], lr=0.05, weight_decay=5.0)
        for _ in range(400):
            for p, opt in ((plain, opt_plain), (decayed, opt_decayed)):
                opt.zero_grad()
                quadratic_loss(p, target).backward()
                opt.step()
        assert decayed.data[0] < plain.data[0]

    def test_handles_multiple_parameters(self):
        a = Parameter(np.zeros(2))
        b = Parameter(np.zeros(3))
        optimizer = Adam([a, b], lr=0.1)
        optimizer.zero_grad()
        (quadratic_loss(a, np.ones(2)) + quadratic_loss(b, np.ones(3))).backward()
        optimizer.step()
        assert not np.allclose(a.data, 0.0)
        assert not np.allclose(b.data, 0.0)
