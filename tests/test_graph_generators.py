"""Unit and property-based tests for the synthetic graph generators."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import DatasetError
from repro.graph.generators import (
    class_correlated_features,
    degree_corrected_sbm,
    stochastic_block_model,
)
from repro.utils.seed import new_rng


class TestStochasticBlockModel:
    def test_shape_and_symmetry(self, rng):
        adjacency = stochastic_block_model([20, 20], p_in=0.3, p_out=0.02, rng=rng)
        assert adjacency.shape == (40, 40)
        assert (adjacency != adjacency.T).nnz == 0

    def test_no_self_loops(self, rng):
        adjacency = stochastic_block_model([30, 30], p_in=0.4, p_out=0.05, rng=rng)
        assert adjacency.diagonal().sum() == 0.0

    def test_binary_entries(self, rng):
        adjacency = stochastic_block_model([25, 25], p_in=0.5, p_out=0.1, rng=rng)
        assert set(np.unique(adjacency.data)).issubset({1.0})

    def test_homophily_reflects_parameters(self, rng):
        adjacency = stochastic_block_model([50, 50], p_in=0.3, p_out=0.01, rng=rng)
        labels = np.repeat([0, 1], 50)
        coo = adjacency.tocoo()
        same = labels[coo.row] == labels[coo.col]
        assert same.mean() > 0.8

    def test_zero_probabilities_give_empty_graph(self, rng):
        adjacency = stochastic_block_model([10, 10], p_in=0.0, p_out=0.0, rng=rng)
        assert adjacency.nnz == 0

    def test_invalid_probability_rejected(self, rng):
        with pytest.raises(DatasetError):
            stochastic_block_model([10], p_in=1.5, p_out=0.0, rng=rng)

    def test_invalid_block_size_rejected(self, rng):
        with pytest.raises(DatasetError):
            stochastic_block_model([10, 0], p_in=0.1, p_out=0.0, rng=rng)

    def test_determinism(self):
        a = stochastic_block_model([20, 20], 0.3, 0.02, new_rng(5))
        b = stochastic_block_model([20, 20], 0.3, 0.02, new_rng(5))
        assert (a != b).nnz == 0


class TestDegreeCorrectedSBM:
    def test_degree_distribution_is_skewed(self, rng):
        adjacency = degree_corrected_sbm([200, 200], p_in=0.05, p_out=0.005, rng=rng)
        degrees = np.asarray(adjacency.sum(axis=1)).reshape(-1)
        assert degrees.max() > 2.0 * degrees.mean()

    def test_symmetry_and_no_self_loops(self, rng):
        adjacency = degree_corrected_sbm([50, 50], p_in=0.1, p_out=0.01, rng=rng)
        assert (adjacency != adjacency.T).nnz == 0
        assert adjacency.diagonal().sum() == 0.0


class TestClassCorrelatedFeatures:
    def test_shape_and_row_normalisation(self, rng):
        labels = np.repeat([0, 1, 2], 20)
        features = class_correlated_features(labels, 30, 3, 0.5, 0.05, rng)
        assert features.shape == (60, 30)
        sums = features.sum(axis=1)
        nonzero = sums > 0
        np.testing.assert_allclose(sums[nonzero], np.ones(nonzero.sum()))

    def test_class_signal_columns_are_more_active(self, rng):
        labels = np.repeat([0, 1], 100)
        features = class_correlated_features(labels, 40, 5, 0.6, 0.02, rng)
        class0_rows = features[labels == 0]
        own_signal = (class0_rows[:, :5] > 0).mean()
        other_signal = (class0_rows[:, 5:10] > 0).mean()
        assert own_signal > other_signal

    def test_too_many_signal_words_rejected(self, rng):
        labels = np.repeat([0, 1, 2, 3], 5)
        with pytest.raises(DatasetError):
            class_correlated_features(labels, 10, 5, 0.5, 0.01, rng)

    def test_invalid_density_rejected(self, rng):
        with pytest.raises(DatasetError):
            class_correlated_features(np.zeros(5, dtype=int), 10, 1, 0.5, 1.5, rng)


class TestGeneratorProperties:
    @given(
        block_size=st.integers(min_value=5, max_value=40),
        num_blocks=st.integers(min_value=1, max_value=4),
        p_in=st.floats(min_value=0.0, max_value=0.5),
        p_out=st.floats(min_value=0.0, max_value=0.2),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_sbm_invariants(self, block_size, num_blocks, p_in, p_out, seed):
        adjacency = stochastic_block_model(
            [block_size] * num_blocks, p_in, p_out, new_rng(seed)
        )
        n = block_size * num_blocks
        assert adjacency.shape == (n, n)
        # Symmetric, binary, no self-loops — for every sampled configuration.
        assert (adjacency != adjacency.T).nnz == 0
        assert adjacency.diagonal().sum() == 0.0
        if adjacency.nnz:
            assert adjacency.data.max() <= 1.0

    @given(
        num_nodes=st.integers(min_value=4, max_value=60),
        num_classes=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_feature_rows_are_l1_normalised(self, num_nodes, num_classes, seed):
        generator = new_rng(seed)
        labels = generator.integers(0, num_classes, size=num_nodes)
        features = class_correlated_features(labels, 8 * num_classes, 2, 0.5, 0.1, generator)
        sums = features.sum(axis=1)
        assert np.all((np.isclose(sums, 1.0)) | (sums == 0.0))
        assert np.all(features >= 0.0)
