"""Unit tests for poisoned-node selection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attack.selection import (
    RandomNodeSelector,
    RepresentativeNodeSelector,
    SelectionConfig,
)
from repro.exceptions import AttackError
from repro.utils.seed import new_rng


class TestSelectionConfig:
    def test_defaults_valid(self):
        SelectionConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [{"num_clusters": 0}, {"degree_balance": -0.1}, {"selector_epochs": 0}],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(AttackError):
            SelectionConfig(**kwargs)


class TestRepresentativeSelector:
    @pytest.fixture
    def selector(self):
        return RepresentativeNodeSelector(
            SelectionConfig(num_clusters=2, selector_epochs=20)
        )

    def test_budget_respected(self, selector, small_graph, rng):
        selected = selector.select(small_graph, budget=6, target_class=0, rng=rng)
        assert 1 <= selected.size <= 6

    def test_selected_nodes_are_valid_candidates(self, selector, small_graph, rng):
        selected = selector.select(small_graph, budget=6, target_class=0, rng=rng)
        blocked = set(small_graph.split.val.tolist()) | set(small_graph.split.test.tolist())
        assert not (set(selected.tolist()) & blocked)

    def test_target_class_excluded(self, selector, small_graph, rng):
        selected = selector.select(small_graph, budget=6, target_class=0, rng=rng)
        assert np.all(small_graph.labels[selected] != 0)

    def test_target_class_kept_when_not_excluded(self, small_graph, rng):
        selector = RepresentativeNodeSelector(
            SelectionConfig(num_clusters=2, selector_epochs=10, exclude_target_class=False)
        )
        selected = selector.select(small_graph, budget=9, target_class=0, rng=rng)
        assert selected.size >= 1

    def test_candidate_restriction(self, selector, small_graph, rng):
        candidates = np.flatnonzero(small_graph.labels == 1)
        selected = selector.select(
            small_graph, budget=4, target_class=0, rng=rng, candidates=candidates
        )
        assert set(selected.tolist()) <= set(candidates.tolist())

    def test_zero_budget_rejected(self, selector, small_graph, rng):
        with pytest.raises(AttackError):
            selector.select(small_graph, budget=0, target_class=0, rng=rng)

    def test_no_duplicates(self, selector, small_graph, rng):
        selected = selector.select(small_graph, budget=10, target_class=0, rng=rng)
        assert selected.size == np.unique(selected).size

    def test_prefers_moderate_degree_with_large_balance(self, small_graph):
        """A huge degree penalty should steer selection away from hubs."""
        degrees = small_graph.degrees()
        heavy = RepresentativeNodeSelector(
            SelectionConfig(num_clusters=2, selector_epochs=10, degree_balance=100.0)
        ).select(small_graph, budget=4, target_class=0, rng=new_rng(0))
        none_penalty = RepresentativeNodeSelector(
            SelectionConfig(num_clusters=2, selector_epochs=10, degree_balance=0.0)
        ).select(small_graph, budget=4, target_class=0, rng=new_rng(0))
        assert degrees[heavy].mean() <= degrees[none_penalty].mean() + 1e-9


class TestRandomSelector:
    def test_budget_respected(self, small_graph, rng):
        selected = RandomNodeSelector().select(small_graph, budget=5, target_class=0, rng=rng)
        assert selected.size == 5

    def test_excludes_target_class_by_default(self, small_graph, rng):
        selected = RandomNodeSelector().select(small_graph, budget=8, target_class=1, rng=rng)
        assert np.all(small_graph.labels[selected] != 1)

    def test_excludes_val_and_test(self, small_graph, rng):
        selected = RandomNodeSelector().select(small_graph, budget=10, target_class=0, rng=rng)
        blocked = set(small_graph.split.val.tolist()) | set(small_graph.split.test.tolist())
        assert not (set(selected.tolist()) & blocked)

    def test_budget_larger_than_pool_is_capped(self, tiny_graph, rng):
        selected = RandomNodeSelector().select(tiny_graph, budget=100, target_class=0, rng=rng)
        assert selected.size <= tiny_graph.num_nodes

    def test_invalid_budget(self, small_graph, rng):
        with pytest.raises(AttackError):
            RandomNodeSelector().select(small_graph, budget=0, target_class=0, rng=rng)

    def test_different_from_representative(self, small_graph):
        """Random and representative selection should usually differ."""
        random_nodes = RandomNodeSelector().select(
            small_graph, budget=6, target_class=0, rng=new_rng(1)
        )
        representative = RepresentativeNodeSelector(
            SelectionConfig(num_clusters=2, selector_epochs=10)
        ).select(small_graph, budget=6, target_class=0, rng=new_rng(1))
        assert set(random_nodes.tolist()) != set(representative.tolist())
