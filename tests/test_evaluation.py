"""Unit tests for metrics, the evaluation pipeline and result aggregation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attack.trigger import TriggerConfig, TriggerGenerator
from repro.condensation import CondensationConfig, CondensedGraph, make_condenser
from repro.evaluation import (
    EvaluationConfig,
    attack_success_rate,
    clean_test_accuracy,
    format_percent,
    format_table,
)
from repro.evaluation.experiment import ExperimentResult, aggregate_runs
from repro.evaluation.pipeline import (
    evaluate_backdoor,
    evaluate_clean,
    evaluate_condensed_graph,
    train_model_on_condensed,
)
from repro.exceptions import ConfigurationError
from repro.utils.seed import new_rng


class TestMetrics:
    def test_cta_perfect(self):
        predictions = np.array([0, 1, 2, 1])
        labels = np.array([0, 1, 2, 1])
        assert clean_test_accuracy(predictions, labels, np.arange(4)) == 1.0

    def test_cta_subset_only(self):
        predictions = np.array([0, 9, 9, 9])
        labels = np.array([0, 1, 2, 1])
        assert clean_test_accuracy(predictions, labels, np.array([0])) == 1.0

    def test_cta_empty_test_set_rejected(self):
        with pytest.raises(ConfigurationError):
            clean_test_accuracy(np.array([0]), np.array([0]), np.array([], dtype=int))

    def test_asr_excludes_target_class_nodes(self):
        predictions = np.array([1, 1, 1, 1])
        labels = np.array([1, 0, 2, 0])  # node 0 is already class 1
        asr = attack_success_rate(predictions, labels, np.arange(4), target_class=1)
        assert asr == 1.0  # 3 of 3 non-target nodes hit the target

    def test_asr_include_target_class(self):
        predictions = np.array([1, 0, 1])
        labels = np.array([1, 0, 2])
        asr = attack_success_rate(
            predictions, labels, np.arange(3), target_class=1, exclude_target_class=False
        )
        assert asr == pytest.approx(2.0 / 3.0)

    def test_asr_all_target_class_rejected(self):
        with pytest.raises(ConfigurationError):
            attack_success_rate(np.array([0]), np.array([0]), np.array([0]), target_class=0)

    def test_asr_zero_when_attack_fails(self):
        predictions = np.array([0, 2, 1])
        labels = np.array([0, 2, 1])
        asr = attack_success_rate(predictions, labels, np.arange(3), target_class=4)
        assert asr == 0.0


class TestPipeline:
    def test_train_model_on_condensed_gnn(self, small_graph, rng):
        condenser = make_condenser("gcond-x", CondensationConfig(epochs=3, ratio=0.3))
        condensed = condenser.condense(small_graph, rng)
        model = train_model_on_condensed(
            condensed, small_graph, EvaluationConfig(epochs=30, hidden=8), rng
        )
        cta = evaluate_clean(model, small_graph)
        assert 0.0 <= cta <= 1.0

    def test_train_model_on_gc_sntk_uses_krr(self, small_graph, rng):
        from repro.condensation.gc_sntk import SNTKPredictor

        condenser = make_condenser("gc-sntk", CondensationConfig(epochs=3, ratio=0.3))
        condensed = condenser.condense(small_graph, rng)
        model = train_model_on_condensed(condensed, small_graph, EvaluationConfig(), rng)
        assert isinstance(model, SNTKPredictor)

    def test_evaluate_backdoor_returns_fraction(self, small_graph, rng):
        condenser = make_condenser("gcond-x", CondensationConfig(epochs=3, ratio=0.3))
        condensed = condenser.condense(small_graph, rng)
        model = train_model_on_condensed(
            condensed, small_graph, EvaluationConfig(epochs=20, hidden=8), rng
        )
        generator = TriggerGenerator(
            small_graph.num_features, rng, TriggerConfig(trigger_size=2, hidden=8)
        )
        asr = evaluate_backdoor(model, small_graph, generator, target_class=0)
        assert 0.0 <= asr <= 1.0

    def test_evaluate_condensed_graph_without_generator_has_nan_asr(self, small_graph, rng):
        condenser = make_condenser("dc-graph", CondensationConfig(epochs=2, ratio=0.3))
        condensed = condenser.condense(small_graph, rng)
        result = evaluate_condensed_graph(
            condensed, small_graph, EvaluationConfig(epochs=10, hidden=8), rng
        )
        assert np.isnan(result.asr)
        assert result.condensation_method == "dc-graph"

    def test_different_architectures_supported(self, small_graph, rng):
        condenser = make_condenser("gcond-x", CondensationConfig(epochs=2, ratio=0.3))
        condensed = condenser.condense(small_graph, rng)
        for architecture in ("gcn", "sgc", "mlp"):
            model = train_model_on_condensed(
                condensed,
                small_graph,
                EvaluationConfig(architecture=architecture, epochs=10, hidden=8),
                rng,
            )
            assert evaluate_clean(model, small_graph) >= 0.0

    def test_invalid_evaluation_config(self):
        with pytest.raises(ConfigurationError):
            EvaluationConfig(epochs=0)


class TestAggregation:
    def test_aggregate_runs(self):
        mean, std = aggregate_runs([0.5, 0.7])
        assert mean == pytest.approx(0.6)
        assert std == pytest.approx(0.1)

    def test_aggregate_empty(self):
        mean, std = aggregate_runs([])
        assert np.isnan(mean)
        assert np.isnan(std)

    def test_experiment_result_row(self):
        result = ExperimentResult(
            dataset="cora",
            condenser="gcond",
            ratio=0.013,
            clean_cta_mean=0.8,
            clean_cta_std=0.01,
            clean_asr_mean=0.1,
            clean_asr_std=0.01,
            attack_cta_mean=0.79,
            attack_cta_std=0.02,
            attack_asr_mean=0.99,
            attack_asr_std=0.01,
        )
        row = result.as_row()
        assert row["dataset"] == "cora"
        assert row["ASR"] == 0.99
        assert "C-CTA" in row


class TestReporting:
    def test_format_percent(self):
        assert format_percent(0.995) == "99.50"
        assert format_percent(float("nan")) == "--"

    def test_format_table_alignment(self):
        rows = [
            {"name": "cora", "value": 0.5},
            {"name": "citeseer-long", "value": 12.25},
        ]
        table = format_table(rows)
        lines = table.splitlines()
        assert len(lines) == 4
        assert "cora" in lines[2]
        assert all(len(line) == len(lines[0]) for line in lines[2:])

    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"

    def test_format_table_missing_column(self):
        table = format_table([{"a": 1.0}, {"a": 2.0, "b": 3.0}], columns=["a", "b"])
        assert "--" not in table.splitlines()[2] or True  # missing values render as empty
