"""Additional property-based tests: optimisers, defenses and selection scoring."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.autograd import Adam, SGD, Tensor
from repro.autograd.module import Parameter
from repro.condensation.base import CondensedGraph
from repro.defenses import PruneConfig, PruneDefense
from repro.defenses.detection import FeatureOutlierDetector, SpectralSignatureDetector
from repro.utils.seed import new_rng


def _random_condensed(seed: int, n: int, d: int, num_classes: int) -> CondensedGraph:
    generator = new_rng(seed)
    features = generator.normal(size=(n, d))
    labels = generator.integers(0, num_classes, size=n)
    upper = np.triu((generator.random((n, n)) < 0.3).astype(float), k=1)
    adjacency = upper + upper.T
    return CondensedGraph(features=features, labels=labels, adjacency=adjacency, method="test")


class TestOptimizerProperties:
    @given(
        dim=st.integers(min_value=1, max_value=6),
        lr=st.floats(min_value=1e-3, max_value=0.2),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_sgd_step_moves_against_gradient(self, dim, lr, seed):
        generator = new_rng(seed)
        start = generator.normal(size=dim)
        target = generator.normal(size=dim)
        param = Parameter(start.copy())
        optimizer = SGD([param], lr=lr)
        optimizer.zero_grad()
        diff = param - Tensor(target)
        (diff * diff).sum().backward()
        before = float(((start - target) ** 2).sum())
        optimizer.step()
        after = float(((param.data - target) ** 2).sum())
        # A single small SGD step on a convex quadratic never increases the loss
        # (lr is kept below 1/L = 0.5 for this objective).
        assert after <= before + 1e-12

    @given(
        dim=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_adam_first_step_magnitude_bounded_by_lr(self, dim, seed):
        generator = new_rng(seed)
        param = Parameter(generator.normal(size=dim))
        before = param.data.copy()
        optimizer = Adam([param], lr=0.05)
        optimizer.zero_grad()
        (param * param).sum().backward()
        optimizer.step()
        # Adam's bias-corrected first step is at most ~lr per coordinate.
        assert np.all(np.abs(param.data - before) <= 0.05 + 1e-9)


class TestDefenseProperties:
    @given(
        n=st.integers(min_value=4, max_value=20),
        d=st.integers(min_value=2, max_value=8),
        seed=st.integers(min_value=0, max_value=500),
        fraction=st.floats(min_value=0.1, max_value=0.8),
    )
    @settings(max_examples=25, deadline=None)
    def test_prune_only_removes_edges(self, n, d, seed, fraction):
        condensed = _random_condensed(seed, n, d, num_classes=3)
        pruned = PruneDefense(PruneConfig(prune_fraction=fraction)).apply_to_condensed(condensed)
        before = condensed.adjacency > 0
        after = pruned.adjacency > 0
        # Pruning never adds edges and never changes features or labels.
        assert not np.any(after & ~before)
        np.testing.assert_allclose(pruned.features, condensed.features)
        np.testing.assert_array_equal(pruned.labels, condensed.labels)

    @given(
        n=st.integers(min_value=6, max_value=24),
        d=st.integers(min_value=2, max_value=6),
        seed=st.integers(min_value=0, max_value=500),
        contamination=st.floats(min_value=0.05, max_value=0.5),
    )
    @settings(max_examples=25, deadline=None)
    def test_detectors_flag_expected_fraction(self, n, d, seed, contamination):
        condensed = _random_condensed(seed, n, d, num_classes=2)
        for detector_cls in (FeatureOutlierDetector, SpectralSignatureDetector):
            report = detector_cls(contamination=contamination).detect(condensed)
            expected = max(1, int(round(contamination * n)))
            assert report.num_flagged == expected
            assert report.scores.shape == (n,)


class TestSelectionScoreProperties:
    @given(
        seed=st.integers(min_value=0, max_value=500),
        balance=st.floats(min_value=0.0, max_value=5.0),
    )
    @settings(max_examples=20, deadline=None)
    def test_metric_is_monotone_in_degree(self, seed, balance):
        """Eq. 9: at equal distance, a higher-degree node never scores better."""
        generator = new_rng(seed)
        distance = float(generator.random())
        low_degree, high_degree = 2.0, 10.0
        score_low = distance + balance * low_degree
        score_high = distance + balance * high_degree
        assert score_high >= score_low


class TestKernelBackendProperties:
    """Algebraic invariants every kernel backend must satisfy.

    Shapes are drawn by hypothesis; each property is checked for every
    registered backend plus a forced-parallel :class:`ThreadedBackend`
    (the registered ``threaded`` singleton serialises on 1-core hosts).
    Linearity holds to float tolerance only — the reference itself
    reassociates ``A(x+y)`` vs ``Ax+Ay`` — while structural properties
    (identity no-op, transpose involution) are exact.
    """

    @staticmethod
    def _backends():
        from repro.kernels import (
            ThreadedBackend,
            active_backend,
            available_kernel_backends,
            set_kernel_backend,
        )

        instances = []
        for name in available_kernel_backends():
            previous = set_kernel_backend(name)
            try:
                instances.append(active_backend())
            finally:
                set_kernel_backend(previous)
        instances.append(ThreadedBackend(workers=3))
        return instances

    @given(
        n=st.integers(min_value=1, max_value=12),
        f=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=25, deadline=None)
    def test_spmm_is_linear(self, n, f, seed):
        import scipy.sparse as sp

        generator = new_rng(seed)
        dense_a = generator.normal(size=(n, n))
        dense_a[generator.random((n, n)) < 0.5] = 0.0
        matrix = sp.csr_matrix(dense_a)
        x = generator.normal(size=(n, f))
        y = generator.normal(size=(n, f))
        alpha = float(generator.normal())
        for backend in self._backends():
            combined = backend.spmm(matrix, x + alpha * y)
            separate = backend.spmm(matrix, x) + alpha * backend.spmm(matrix, y)
            np.testing.assert_allclose(combined, separate, atol=1e-10)

    @given(
        n=st.integers(min_value=1, max_value=12),
        f=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=25, deadline=None)
    def test_identity_adjacency_is_noop(self, n, f, seed):
        import scipy.sparse as sp

        generator = new_rng(seed)
        x = generator.normal(size=(n, f))
        identity = sp.eye(n, format="csr")
        for backend in self._backends():
            np.testing.assert_array_equal(backend.spmm(identity, x), x)

    @given(
        batch=st.integers(min_value=1, max_value=5),
        n=st.integers(min_value=1, max_value=6),
        k=st.integers(min_value=1, max_value=6),
        m=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=25, deadline=None)
    def test_batched_matmul_is_linear(self, batch, n, k, m, seed):
        generator = new_rng(seed)
        a = generator.normal(size=(batch, n, k))
        b = generator.normal(size=(batch, k, m))
        c = generator.normal(size=(batch, k, m))
        alpha = float(generator.normal())
        for backend in self._backends():
            combined = backend.batched_matmul(a, b + alpha * c)
            separate = backend.batched_matmul(a, b) + alpha * backend.batched_matmul(a, c)
            np.testing.assert_allclose(combined, separate, atol=1e-10)

    @given(
        batch=st.integers(min_value=1, max_value=5),
        n=st.integers(min_value=1, max_value=6),
        m=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=25, deadline=None)
    def test_transpose_consistency(self, batch, n, m, seed):
        """transpose is an involution and commutes with batched matmul:
        ``(A @ B)^T == B^T @ A^T`` per batch, exactly (same per-entry dot)."""
        generator = new_rng(seed)
        a = generator.normal(size=(batch, n, m))
        b = generator.normal(size=(batch, m, n))
        for backend in self._backends():
            np.testing.assert_array_equal(
                backend.transpose_last2(backend.transpose_last2(a)), a
            )
            product_t = backend.transpose_last2(backend.batched_matmul(a, b))
            swapped = backend.batched_matmul(
                backend.transpose_last2(b), backend.transpose_last2(a)
            )
            np.testing.assert_allclose(product_t, swapped, atol=1e-10)
