"""Unit tests for the stealthiness / attack-analysis helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attack.analysis import (
    class_distribution_shift,
    condensed_graph_divergence,
    trigger_statistics,
)
from repro.attack.trigger import TriggerConfig, TriggerGenerator
from repro.condensation.base import CondensedGraph
from repro.exceptions import AttackError


@pytest.fixture
def clean_condensed(rng):
    return CondensedGraph(
        features=rng.normal(size=(9, 5)),
        labels=np.repeat([0, 1, 2], 3),
        adjacency=np.eye(9),
        method="gcond-x",
    )


class TestCondensedGraphDivergence:
    def test_identical_graphs_have_zero_gaps(self, clean_condensed):
        divergence = condensed_graph_divergence(clean_condensed, clean_condensed.copy())
        assert divergence["feature_mean_gap"] == 0.0
        assert divergence["edge_count_gap"] == 0.0
        assert divergence["mean_class_prototype_cosine"] == pytest.approx(1.0)

    def test_perturbed_graph_has_positive_gaps(self, clean_condensed):
        poisoned = clean_condensed.copy()
        poisoned.features[0] += 5.0
        divergence = condensed_graph_divergence(clean_condensed, poisoned)
        assert divergence["feature_mean_gap"] > 0.0
        assert divergence["mean_class_prototype_cosine"] < 1.0

    def test_dimension_mismatch_rejected(self, clean_condensed, rng):
        other = CondensedGraph(
            features=rng.normal(size=(9, 7)),
            labels=clean_condensed.labels.copy(),
            adjacency=np.eye(9),
        )
        with pytest.raises(AttackError):
            condensed_graph_divergence(clean_condensed, other)


class TestTriggerStatistics:
    def test_statistics_keys_and_ranges(self, small_graph, rng):
        generator = TriggerGenerator(
            small_graph.num_features, rng, TriggerConfig(trigger_size=3, feature_scale=0.1)
        )
        generator.calibrate(small_graph.features)
        stats = trigger_statistics(generator, small_graph, np.array([0, 1, 2]))
        assert stats["trigger_size"] == 3.0
        assert 0.0 <= stats["internal_edge_density"] <= 1.0
        # Calibration keeps triggers within feature_scale of the host range.
        assert stats["relative_feature_max"] <= 0.11
        assert stats["added_nodes_per_target"] == 3.0

    def test_empty_node_list_rejected(self, small_graph, rng):
        generator = TriggerGenerator(small_graph.num_features, rng, TriggerConfig(trigger_size=2))
        with pytest.raises(AttackError):
            trigger_statistics(generator, small_graph, np.array([], dtype=int))


class TestClassDistributionShift:
    def test_identical_distributions(self, clean_condensed):
        shift = class_distribution_shift(clean_condensed, clean_condensed.copy())
        assert shift["total_variation"] == 0.0
        assert shift["clean_entropy"] == pytest.approx(shift["poisoned_entropy"])

    def test_shifted_distribution_detected(self, clean_condensed):
        poisoned = clean_condensed.copy()
        poisoned.labels[:] = 0
        shift = class_distribution_shift(clean_condensed, poisoned)
        assert shift["total_variation"] > 0.5
        assert shift["poisoned_entropy"] == 0.0
