"""Unit tests for the SNTK kernels, KRR and the GC-SNTK condenser."""

from __future__ import annotations

import numpy as np
import pytest

from repro.condensation import CondensationConfig
from repro.condensation.gc_sntk import GCSNTK, SNTKPredictor
from repro.condensation.sntk import (
    KernelRidgeRegression,
    linear_structure_kernel,
    relu_ntk,
    structure_based_ntk,
)
from repro.exceptions import CondensationError
from repro.utils.seed import new_rng


class TestKernels:
    def test_linear_kernel_is_gram_matrix(self, rng):
        x = rng.normal(size=(5, 3))
        np.testing.assert_allclose(linear_structure_kernel(x, x), x @ x.T)

    def test_relu_ntk_symmetric_psd(self, rng):
        x = rng.normal(size=(8, 4))
        kernel = relu_ntk(x, x, depth=2)
        np.testing.assert_allclose(kernel, kernel.T, atol=1e-10)
        eigenvalues = np.linalg.eigvalsh(kernel)
        assert eigenvalues.min() >= -1e-8

    def test_relu_ntk_depth_one_is_linear(self, rng):
        x = rng.normal(size=(5, 3))
        y = rng.normal(size=(4, 3))
        np.testing.assert_allclose(relu_ntk(x, y, depth=1), x @ y.T)

    def test_relu_ntk_rectangular_shape(self, rng):
        kernel = relu_ntk(rng.normal(size=(6, 3)), rng.normal(size=(4, 3)), depth=2)
        assert kernel.shape == (6, 4)

    def test_relu_ntk_invalid_depth(self, rng):
        with pytest.raises(CondensationError):
            relu_ntk(rng.normal(size=(2, 2)), rng.normal(size=(2, 2)), depth=0)

    def test_structure_based_ntk_uses_propagation(self, small_graph, rng):
        support = rng.normal(size=(5, small_graph.num_features))
        with_structure = structure_based_ntk(
            small_graph.adjacency, small_graph.features, support, num_hops=2
        )
        assert with_structure.shape == (small_graph.num_nodes, 5)


class TestKernelRidgeRegression:
    def test_fits_separable_data(self, rng):
        x0 = rng.normal(loc=-2.0, size=(20, 4))
        x1 = rng.normal(loc=2.0, size=(20, 4))
        features = np.vstack([x0, x1])
        labels = np.array([0] * 20 + [1] * 20)
        model = KernelRidgeRegression(ridge=1e-2, kernel="linear").fit(features, labels)
        accuracy = float(np.mean(model.predict(features) == labels))
        assert accuracy > 0.95

    def test_relu_kernel_variant(self, rng):
        features = rng.normal(size=(10, 3))
        labels = rng.integers(0, 2, size=10)
        model = KernelRidgeRegression(ridge=1e-1, kernel="relu").fit(features, labels)
        assert model.predict(features).shape == (10,)

    def test_predict_before_fit_raises(self):
        with pytest.raises(CondensationError):
            KernelRidgeRegression().predict(np.ones((2, 2)))

    def test_invalid_ridge_rejected(self):
        with pytest.raises(CondensationError):
            KernelRidgeRegression(ridge=0.0)

    def test_invalid_kernel_rejected(self):
        with pytest.raises(CondensationError):
            KernelRidgeRegression(kernel="rbf")

    def test_decision_function_shape(self, rng):
        features = rng.normal(size=(12, 3))
        labels = rng.integers(0, 3, size=12)
        model = KernelRidgeRegression(ridge=1e-1).fit(features, labels)
        scores = model.decision_function(rng.normal(size=(7, 3)))
        assert scores.shape == (7, 3)


class TestGCSNTKCondenser:
    def test_condense_shapes(self, small_graph, rng):
        condenser = GCSNTK(CondensationConfig(epochs=5, ratio=0.3))
        condensed = condenser.condense(small_graph, rng)
        assert condensed.method == "gc-sntk"
        assert condensed.features.shape[1] == small_graph.num_features
        np.testing.assert_allclose(condensed.adjacency, np.eye(condensed.num_nodes))

    def test_invalid_ridge_rejected(self):
        with pytest.raises(CondensationError):
            GCSNTK(ridge=-1.0)

    def test_epoch_step_before_initialize_raises(self):
        with pytest.raises(CondensationError):
            GCSNTK().epoch_step()

    def test_loss_decreases(self, small_graph):
        condenser = GCSNTK(CondensationConfig(epochs=1, ratio=0.3))
        condenser.initialize(small_graph, new_rng(1))
        losses = [condenser.epoch_step() for _ in range(20)]
        assert losses[-1] <= losses[0]

    def test_predictor_accuracy_on_small_graph(self, small_graph):
        condenser = GCSNTK(CondensationConfig(epochs=20, ratio=0.4))
        condensed = condenser.condense(small_graph, new_rng(2))
        predictor = condenser.predictor(condensed)
        predictions = predictor.predict(small_graph.adjacency, small_graph.features)
        test = small_graph.split.test
        accuracy = float(np.mean(predictions[test] == small_graph.labels[test]))
        assert accuracy > 0.6

    def test_standalone_predictor(self, small_graph, rng):
        condenser = GCSNTK(CondensationConfig(epochs=3, ratio=0.3))
        condensed = condenser.condense(small_graph, rng)
        predictor = SNTKPredictor(condensed, ridge=1e-2, num_hops=2)
        predictions = predictor.predict(small_graph.adjacency, small_graph.features)
        assert predictions.shape == (small_graph.num_nodes,)
