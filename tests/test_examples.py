"""Smoke tests for the example scripts.

Full example runs take tens of seconds, so these tests only exercise the
pieces that can fail silently: importability, the synthetic-scenario builders
and the argument handling — plus one miniature end-to-end pass of the
fraud-detection scenario with tiny budgets.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import numpy as np
import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    """Import an example script as a module without executing ``main()``."""
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(name.removesuffix(".py"), path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


ALL_EXAMPLES = [
    "quickstart.py",
    "condensation_service_audit.py",
    "fraud_detection_poisoning.py",
    "condensation_methods_comparison.py",
    "run_sweep.py",
]


class TestExampleModules:
    @pytest.mark.parametrize("name", ALL_EXAMPLES)
    def test_example_imports_and_defines_main(self, name):
        module = load_example(name)
        assert callable(module.main)

    def test_examples_have_module_docstrings(self):
        for name in ALL_EXAMPLES:
            module = load_example(name)
            assert module.__doc__ and "Run with" in module.__doc__


class TestFraudScenarioBuilder:
    def test_transaction_graph_properties(self):
        module = load_example("fraud_detection_poisoning.py")
        graph = module.build_transaction_graph(seed=3)
        assert graph.num_nodes == 2000
        assert graph.num_classes == 4
        assert graph.inductive
        # Fraud-ring accounts exist and form the smallest class.
        counts = np.bincount(graph.labels)
        assert counts[module.FRAUD_RING] == counts.min()

    def test_transaction_graph_deterministic(self):
        module = load_example("fraud_detection_poisoning.py")
        a = module.build_transaction_graph(seed=5)
        b = module.build_transaction_graph(seed=5)
        np.testing.assert_allclose(a.features, b.features)

    def test_class_names_cover_all_classes(self):
        module = load_example("fraud_detection_poisoning.py")
        graph = module.build_transaction_graph(seed=1)
        assert set(module.CLASS_NAMES) == set(range(graph.num_classes))


class TestComparisonExampleArguments:
    def test_unknown_dataset_exits(self, monkeypatch):
        module = load_example("condensation_methods_comparison.py")
        monkeypatch.setattr(sys, "argv", ["prog", "not-a-dataset"])
        with pytest.raises(SystemExit):
            module.main()
