"""Unit tests for the Prune and Randsmooth defenses."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.condensation.base import CondensedGraph
from repro.defenses import (
    PruneConfig,
    PruneDefense,
    RandSmoothConfig,
    RandSmoothDefense,
    SmoothedModel,
)
from repro.exceptions import DefenseError
from repro.models import MLP, GCN
from repro.utils.seed import new_rng


@pytest.fixture
def condensed_with_structure(rng):
    features = rng.normal(size=(8, 5))
    labels = rng.integers(0, 2, size=8)
    adjacency = np.zeros((8, 8))
    for i in range(7):
        adjacency[i, i + 1] = adjacency[i + 1, i] = 1.0
    return CondensedGraph(features=features, labels=labels, adjacency=adjacency, method="gcond")


class TestPruneConfig:
    def test_default_valid(self):
        assert PruneConfig().prune_fraction == 0.2

    def test_invalid_fraction_rejected(self):
        with pytest.raises(DefenseError):
            PruneConfig(prune_fraction=1.0)
        with pytest.raises(DefenseError):
            PruneConfig(prune_fraction=-0.1)


class TestPruneDefense:
    def test_removes_edges_from_condensed(self, condensed_with_structure):
        defense = PruneDefense(PruneConfig(prune_fraction=0.5))
        pruned = defense.apply_to_condensed(condensed_with_structure)
        assert (pruned.adjacency > 0).sum() < (condensed_with_structure.adjacency > 0).sum()
        assert pruned.metadata["pruned_edges"] >= 1

    def test_keeps_symmetry(self, condensed_with_structure):
        pruned = PruneDefense(PruneConfig(prune_fraction=0.4)).apply_to_condensed(
            condensed_with_structure
        )
        np.testing.assert_allclose(pruned.adjacency, pruned.adjacency.T)

    def test_does_not_mutate_input(self, condensed_with_structure):
        original = condensed_with_structure.adjacency.copy()
        PruneDefense(PruneConfig(prune_fraction=0.5)).apply_to_condensed(condensed_with_structure)
        np.testing.assert_allclose(condensed_with_structure.adjacency, original)

    def test_edgeless_graph_is_noop(self, rng):
        condensed = CondensedGraph(
            features=rng.normal(size=(4, 3)), labels=np.zeros(4, dtype=int), adjacency=np.eye(4) * 0
        )
        pruned = PruneDefense().apply_to_condensed(condensed)
        assert (pruned.adjacency > 0).sum() == 0

    def test_prunes_dissimilar_edges_first(self):
        # Two similar nodes (0, 1) and one outlier (2) connected to both.
        features = np.array([[1.0, 0.0], [0.99, 0.01], [-1.0, 5.0]])
        adjacency = np.array(
            [[0.0, 1.0, 1.0], [1.0, 0.0, 1.0], [1.0, 1.0, 0.0]]
        )
        condensed = CondensedGraph(
            features=features, labels=np.array([0, 0, 1]), adjacency=adjacency
        )
        pruned = PruneDefense(PruneConfig(prune_fraction=0.5)).apply_to_condensed(condensed)
        # The similar pair's edge must survive; at least one outlier edge is gone.
        assert pruned.adjacency[0, 1] > 0
        assert pruned.adjacency[0, 2] == 0 or pruned.adjacency[1, 2] == 0

    def test_apply_to_sparse_graph(self, small_graph):
        defense = PruneDefense(PruneConfig(prune_fraction=0.3))
        pruned = defense.apply_to_graph(small_graph)
        assert pruned.num_edges < small_graph.num_edges
        assert (pruned.adjacency != pruned.adjacency.T).nnz == 0


class TestRandSmooth:
    def test_invalid_config(self):
        with pytest.raises(DefenseError):
            RandSmoothConfig(num_samples=0)
        with pytest.raises(DefenseError):
            RandSmoothConfig(keep_probability=0.0)

    def test_smoothed_predictions_are_valid_labels(self, small_graph, rng):
        model = GCN(small_graph.num_features, small_graph.num_classes, rng=rng, hidden=8)
        smoothed = RandSmoothDefense(RandSmoothConfig(num_samples=3)).wrap(model)
        predictions = smoothed.predict(small_graph.adjacency, small_graph.features)
        assert predictions.shape == (small_graph.num_nodes,)
        assert predictions.max() < small_graph.num_classes

    def test_keep_probability_one_matches_base_model_for_mlp(self, small_graph, rng):
        model = MLP(small_graph.num_features, small_graph.num_classes, rng=rng, hidden=8)
        model.eval()
        smoothed = SmoothedModel(model, RandSmoothConfig(num_samples=3, keep_probability=1.0))
        base = model.predict(small_graph.adjacency, small_graph.features)
        np.testing.assert_array_equal(
            smoothed.predict(small_graph.adjacency, small_graph.features), base
        )

    def test_subsample_sparse_removes_edges(self, small_graph):
        smoothed = SmoothedModel(object(), RandSmoothConfig(keep_probability=0.5))
        sampled = smoothed._subsample(small_graph.adjacency, new_rng(0))
        assert sampled.nnz < small_graph.adjacency.nnz
        assert (sampled != sampled.T).nnz == 0

    def test_subsample_dense_removes_edges(self):
        adjacency = 1.0 - np.eye(10)
        smoothed = SmoothedModel(object(), RandSmoothConfig(keep_probability=0.3))
        sampled = smoothed._subsample(adjacency, new_rng(0))
        assert sampled.sum() < adjacency.sum()
        np.testing.assert_allclose(sampled, sampled.T)

    def test_deterministic_given_seed(self, small_graph, rng):
        model = GCN(small_graph.num_features, small_graph.num_classes, rng=rng, hidden=8)
        config = RandSmoothConfig(num_samples=3, seed=5)
        a = SmoothedModel(model, config).predict(small_graph.adjacency, small_graph.features)
        b = SmoothedModel(model, config).predict(small_graph.adjacency, small_graph.features)
        np.testing.assert_array_equal(a, b)
