"""Unit tests for the Prune, Randsmooth and robust-training defenses."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.condensation.base import CondensedGraph
from repro.defenses import (
    DropEdgeConfig,
    DropEdgeDefense,
    DropNodeConfig,
    DropNodeDefense,
    PruneConfig,
    PruneDefense,
    RandSmoothConfig,
    RandSmoothDefense,
    SmoothedModel,
    drop_edges,
)
from repro.defenses.randsmooth import _majority_vote, _majority_vote_loop
from repro.evaluation import EvaluationConfig
from repro.exceptions import DefenseError
from repro.graph.data import GraphData
from repro.graph.splits import SplitIndices
from repro.models import MLP, GCN
from repro.utils.seed import new_rng


@pytest.fixture
def condensed_with_structure(rng):
    features = rng.normal(size=(8, 5))
    labels = rng.integers(0, 2, size=8)
    adjacency = np.zeros((8, 8))
    for i in range(7):
        adjacency[i, i + 1] = adjacency[i + 1, i] = 1.0
    return CondensedGraph(features=features, labels=labels, adjacency=adjacency, method="gcond")


@pytest.fixture
def weighted_graph_with_self_loops(rng):
    """A weighted sparse graph whose adjacency stores diagonal entries."""
    num_nodes = 12
    dense = np.zeros((num_nodes, num_nodes))
    for i in range(num_nodes - 1):
        weight = 0.5 + rng.random()
        dense[i, i + 1] = dense[i + 1, i] = weight
    dense[0, 5] = dense[5, 0] = 2.5
    np.fill_diagonal(dense, 1.0)
    index = np.arange(num_nodes)
    return GraphData(
        adjacency=sp.csr_matrix(dense),
        features=rng.normal(size=(num_nodes, 4)),
        labels=rng.integers(0, 2, size=num_nodes),
        split=SplitIndices(train=index[:6], val=index[6:9], test=index[9:]),
    )


class TestPruneConfig:
    def test_default_valid(self):
        assert PruneConfig().prune_fraction == 0.2

    def test_invalid_fraction_rejected(self):
        with pytest.raises(DefenseError):
            PruneConfig(prune_fraction=1.0)
        with pytest.raises(DefenseError):
            PruneConfig(prune_fraction=-0.1)


class TestPruneDefense:
    def test_removes_edges_from_condensed(self, condensed_with_structure):
        defense = PruneDefense(PruneConfig(prune_fraction=0.5))
        pruned = defense.apply_to_condensed(condensed_with_structure)
        assert (pruned.adjacency > 0).sum() < (condensed_with_structure.adjacency > 0).sum()
        assert pruned.metadata["pruned_edges"] >= 1

    def test_keeps_symmetry(self, condensed_with_structure):
        pruned = PruneDefense(PruneConfig(prune_fraction=0.4)).apply_to_condensed(
            condensed_with_structure
        )
        np.testing.assert_allclose(pruned.adjacency, pruned.adjacency.T)

    def test_does_not_mutate_input(self, condensed_with_structure):
        original = condensed_with_structure.adjacency.copy()
        PruneDefense(PruneConfig(prune_fraction=0.5)).apply_to_condensed(condensed_with_structure)
        np.testing.assert_allclose(condensed_with_structure.adjacency, original)

    def test_edgeless_graph_is_noop(self, rng):
        condensed = CondensedGraph(
            features=rng.normal(size=(4, 3)), labels=np.zeros(4, dtype=int), adjacency=np.eye(4) * 0
        )
        pruned = PruneDefense().apply_to_condensed(condensed)
        assert (pruned.adjacency > 0).sum() == 0

    def test_prunes_dissimilar_edges_first(self):
        # Two similar nodes (0, 1) and one outlier (2) connected to both.
        features = np.array([[1.0, 0.0], [0.99, 0.01], [-1.0, 5.0]])
        adjacency = np.array(
            [[0.0, 1.0, 1.0], [1.0, 0.0, 1.0], [1.0, 1.0, 0.0]]
        )
        condensed = CondensedGraph(
            features=features, labels=np.array([0, 0, 1]), adjacency=adjacency
        )
        pruned = PruneDefense(PruneConfig(prune_fraction=0.5)).apply_to_condensed(condensed)
        # The similar pair's edge must survive; at least one outlier edge is gone.
        assert pruned.adjacency[0, 1] > 0
        assert pruned.adjacency[0, 2] == 0 or pruned.adjacency[1, 2] == 0

    def test_apply_to_sparse_graph(self, small_graph):
        defense = PruneDefense(PruneConfig(prune_fraction=0.3))
        pruned = defense.apply_to_graph(small_graph)
        assert pruned.num_edges < small_graph.num_edges
        assert (pruned.adjacency != pruned.adjacency.T).nnz == 0

    def test_fraction_zero_condensed_is_bitwise_noop(self, condensed_with_structure):
        pruned = PruneDefense(PruneConfig(prune_fraction=0.0)).apply_to_condensed(
            condensed_with_structure
        )
        assert np.array_equal(pruned.adjacency, condensed_with_structure.adjacency)
        assert pruned.metadata["pruned_edges"] == 0.0

    def test_fraction_zero_graph_is_bitwise_noop(self, small_graph):
        pruned = PruneDefense(PruneConfig(prune_fraction=0.0)).apply_to_graph(small_graph)
        assert (pruned.adjacency != small_graph.adjacency).nnz == 0

    def test_drops_exactly_floor_fraction_edges(self, condensed_with_structure):
        # The path graph has 7 undirected edges; floor(0.5 * 7) = 3.
        pruned = PruneDefense(PruneConfig(prune_fraction=0.5)).apply_to_condensed(
            condensed_with_structure
        )
        assert pruned.metadata["pruned_edges"] == 3.0
        assert (np.triu(pruned.adjacency, k=1) > 0).sum() == 4

    def test_tied_similarities_still_drop_exact_count(self, rng):
        # Identical features give every edge the same similarity; a quantile
        # threshold would drop all or none, rank selection drops exactly two.
        features = np.ones((6, 3))
        adjacency = np.zeros((6, 6))
        for i in range(5):
            adjacency[i, i + 1] = adjacency[i + 1, i] = 1.0
        condensed = CondensedGraph(
            features=features, labels=np.zeros(6, dtype=int), adjacency=adjacency
        )
        pruned = PruneDefense(PruneConfig(prune_fraction=0.4)).apply_to_condensed(condensed)
        assert pruned.metadata["pruned_edges"] == 2.0
        assert (np.triu(pruned.adjacency, k=1) > 0).sum() == 3

    def test_condensed_and_graph_drop_the_same_edges(self, condensed_with_structure):
        """Both protocols remove identical undirected edges at the same fraction."""
        defense = PruneDefense(PruneConfig(prune_fraction=0.5))
        pruned_condensed = defense.apply_to_condensed(condensed_with_structure)
        num_nodes = condensed_with_structure.adjacency.shape[0]
        index = np.arange(num_nodes)
        graph = GraphData(
            adjacency=sp.csr_matrix(condensed_with_structure.adjacency),
            features=condensed_with_structure.features,
            labels=np.abs(condensed_with_structure.labels),
            split=SplitIndices(train=index, val=index[:1], test=index[:1]),
        )
        pruned_graph = defense.apply_to_graph(graph)
        np.testing.assert_array_equal(
            pruned_graph.adjacency.toarray() > 0, pruned_condensed.adjacency > 0
        )

    def test_graph_prune_preserves_self_loops_and_weights(
        self, weighted_graph_with_self_loops
    ):
        graph = weighted_graph_with_self_loops
        pruned = PruneDefense(PruneConfig(prune_fraction=0.4)).apply_to_graph(graph)
        original = graph.adjacency.toarray()
        result = pruned.adjacency.toarray()
        # Every self-loop survives untouched.
        np.testing.assert_array_equal(np.diag(result), np.diag(original))
        # Surviving off-diagonal entries keep their original weights.
        surviving = result != 0
        np.testing.assert_array_equal(result[surviving], original[surviving])
        assert (result != 0).sum() < (original != 0).sum()


class TestRandSmooth:
    def test_invalid_config(self):
        with pytest.raises(DefenseError):
            RandSmoothConfig(num_samples=0)
        with pytest.raises(DefenseError):
            RandSmoothConfig(keep_probability=0.0)

    def test_smoothed_predictions_are_valid_labels(self, small_graph, rng):
        model = GCN(small_graph.num_features, small_graph.num_classes, rng=rng, hidden=8)
        smoothed = RandSmoothDefense(RandSmoothConfig(num_samples=3)).wrap(model)
        predictions = smoothed.predict(small_graph.adjacency, small_graph.features)
        assert predictions.shape == (small_graph.num_nodes,)
        assert predictions.max() < small_graph.num_classes

    def test_keep_probability_one_matches_base_model_for_mlp(self, small_graph, rng):
        model = MLP(small_graph.num_features, small_graph.num_classes, rng=rng, hidden=8)
        model.eval()
        smoothed = SmoothedModel(model, RandSmoothConfig(num_samples=3, keep_probability=1.0))
        base = model.predict(small_graph.adjacency, small_graph.features)
        np.testing.assert_array_equal(
            smoothed.predict(small_graph.adjacency, small_graph.features), base
        )

    def test_subsample_sparse_removes_edges(self, small_graph):
        smoothed = SmoothedModel(object(), RandSmoothConfig(keep_probability=0.5))
        sampled = smoothed._subsample(small_graph.adjacency, new_rng(0))
        assert sampled.nnz < small_graph.adjacency.nnz
        assert (sampled != sampled.T).nnz == 0

    def test_subsample_dense_removes_edges(self):
        adjacency = 1.0 - np.eye(10)
        smoothed = SmoothedModel(object(), RandSmoothConfig(keep_probability=0.3))
        sampled = smoothed._subsample(adjacency, new_rng(0))
        assert sampled.sum() < adjacency.sum()
        np.testing.assert_allclose(sampled, sampled.T)

    def test_deterministic_given_seed(self, small_graph, rng):
        model = GCN(small_graph.num_features, small_graph.num_classes, rng=rng, hidden=8)
        config = RandSmoothConfig(num_samples=3, seed=5)
        a = SmoothedModel(model, config).predict(small_graph.adjacency, small_graph.features)
        b = SmoothedModel(model, config).predict(small_graph.adjacency, small_graph.features)
        np.testing.assert_array_equal(a, b)

    def test_subsample_preserves_self_loops_and_weights(
        self, weighted_graph_with_self_loops
    ):
        graph = weighted_graph_with_self_loops
        smoothed = SmoothedModel(object(), RandSmoothConfig(keep_probability=0.4))
        sampled = smoothed._subsample(graph.adjacency, new_rng(0)).toarray()
        original = graph.adjacency.toarray()
        np.testing.assert_array_equal(np.diag(sampled), np.diag(original))
        surviving = sampled != 0
        np.testing.assert_array_equal(sampled[surviving], original[surviving])
        assert (sampled != 0).sum() < (original != 0).sum()

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_majority_vote_matches_loop_bitwise(self, seed):
        rng = new_rng(seed)
        stacked = rng.integers(0, 5, size=(7, 40))
        np.testing.assert_array_equal(_majority_vote(stacked), _majority_vote_loop(stacked))

    def test_majority_vote_tie_breaks_to_smallest_label(self):
        # Node 0 ties 2-2 between classes 1 and 3; argmax picks the smaller.
        stacked = np.array([[1, 0], [3, 0], [1, 2], [3, 2]])
        np.testing.assert_array_equal(_majority_vote(stacked), np.array([1, 0]))
        np.testing.assert_array_equal(_majority_vote_loop(stacked), np.array([1, 0]))


class TestDropEdge:
    def test_invalid_config(self):
        with pytest.raises(DefenseError):
            DropEdgeConfig(drop_rate=1.0)
        with pytest.raises(DefenseError):
            DropEdgeConfig(drop_rate=-0.1)

    def test_drop_rate_zero_is_noop(self, small_graph):
        dropped = drop_edges(small_graph.adjacency, 0.0, new_rng(0))
        assert (dropped != small_graph.adjacency).nnz == 0

    def test_sparse_drop_preserves_self_loops_and_weights(
        self, weighted_graph_with_self_loops
    ):
        graph = weighted_graph_with_self_loops
        dropped = drop_edges(graph.adjacency, 0.6, new_rng(0)).toarray()
        original = graph.adjacency.toarray()
        np.testing.assert_array_equal(np.diag(dropped), np.diag(original))
        surviving = dropped != 0
        np.testing.assert_array_equal(dropped[surviving], original[surviving])
        assert (dropped != 0).sum() < (original != 0).sum()

    def test_sparse_drop_keeps_symmetry(self, small_graph):
        dropped = drop_edges(small_graph.adjacency, 0.5, new_rng(3))
        assert (dropped != dropped.T).nnz == 0

    def test_dense_drop_keeps_symmetry(self, rng):
        adjacency = 1.0 - np.eye(10)
        dropped = drop_edges(adjacency, 0.5, new_rng(3))
        np.testing.assert_allclose(dropped, dropped.T)
        assert dropped.sum() < adjacency.sum()

    def test_retrain_returns_working_model(self, small_graph):
        defense = DropEdgeDefense(DropEdgeConfig(drop_rate=0.3))
        evaluation = EvaluationConfig(epochs=3, hidden=8)
        condensed = CondensedGraph(
            features=small_graph.features[:10],
            labels=small_graph.labels[:10],
            adjacency=np.eye(10),
            method="gcond",
        )
        model = defense.retrain(condensed, small_graph, evaluation, new_rng(0))
        predictions = model.predict(small_graph.adjacency, small_graph.features)
        assert predictions.shape == (small_graph.num_nodes,)
        assert predictions.max() < small_graph.num_classes

    def test_retrain_deterministic_given_seed(self, small_graph):
        condensed = CondensedGraph(
            features=small_graph.features[:10],
            labels=small_graph.labels[:10],
            adjacency=np.eye(10),
            method="gcond",
        )
        evaluation = EvaluationConfig(epochs=3, hidden=8)

        def run():
            defense = DropEdgeDefense(DropEdgeConfig(drop_rate=0.3))
            model = defense.retrain(condensed, small_graph, evaluation, new_rng(7))
            return model.predict(small_graph.adjacency, small_graph.features)

        np.testing.assert_array_equal(run(), run())


class TestDropNode:
    def test_invalid_config(self):
        with pytest.raises(DefenseError):
            DropNodeConfig(drop_rate=1.0)

    def test_eval_mode_is_transparent(self, small_graph, rng):
        from repro.defenses.robust_training import _DropNodeModel

        base = MLP(small_graph.num_features, small_graph.num_classes, rng=rng, hidden=8)
        wrapped = _DropNodeModel(base, DropNodeConfig(drop_rate=0.5), new_rng(0))
        wrapped.eval()
        np.testing.assert_array_equal(
            wrapped.predict(small_graph.adjacency, small_graph.features),
            base.predict(small_graph.adjacency, small_graph.features),
        )

    def test_retrain_returns_working_model(self, small_graph):
        defense = DropNodeDefense(DropNodeConfig(drop_rate=0.3))
        evaluation = EvaluationConfig(epochs=3, hidden=8)
        condensed = CondensedGraph(
            features=small_graph.features[:10],
            labels=small_graph.labels[:10],
            adjacency=np.eye(10),
            method="gcond",
        )
        model = defense.retrain(condensed, small_graph, evaluation, new_rng(0))
        predictions = model.predict(small_graph.adjacency, small_graph.features)
        assert predictions.shape == (small_graph.num_nodes,)
        assert predictions.max() < small_graph.num_classes

    def test_gc_sntk_falls_back_to_undefended_predictor(self, small_graph):
        defense = DropNodeDefense()
        evaluation = EvaluationConfig(epochs=3, hidden=8)
        condensed = CondensedGraph(
            features=small_graph.features[:10],
            labels=small_graph.labels[:10],
            adjacency=np.eye(10),
            method="gc-sntk",
        )
        model = defense.retrain(condensed, small_graph, evaluation, new_rng(0))
        predictions = model.predict(small_graph.adjacency, small_graph.features)
        assert predictions.shape == (small_graph.num_nodes,)
