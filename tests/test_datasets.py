"""Unit tests for the synthetic benchmark datasets and the registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    clear_dataset_cache,
    dataset_statistics,
    list_datasets,
    load_dataset,
    statistics_table,
)
from repro.datasets.base import DatasetSpec, get_spec, register_dataset
from repro.datasets.statistics import edge_homophily
from repro.exceptions import DatasetError


class TestRegistry:
    def test_all_four_paper_datasets_registered(self):
        names = list_datasets()
        for expected in ("cora", "citeseer", "flickr", "reddit"):
            assert expected in names

    def test_unknown_dataset_raises(self):
        with pytest.raises(DatasetError):
            load_dataset("ogbn-arxiv")

    def test_get_spec_unknown_raises(self):
        with pytest.raises(DatasetError):
            get_spec("nope")

    def test_duplicate_registration_rejected(self):
        spec = get_spec("cora")
        with pytest.raises(DatasetError):
            register_dataset(spec, lambda s, seed: None)

    def test_case_insensitive_lookup(self):
        graph = load_dataset("CORA", seed=0)
        assert graph.name == "cora"


class TestTransductiveDatasets:
    @pytest.mark.parametrize("name,classes,features", [("cora", 7, 1433), ("citeseer", 6, 1200)])
    def test_spec_matches_paper_statistics(self, name, classes, features):
        graph = load_dataset(name, seed=0)
        assert graph.num_classes == classes
        assert graph.num_features == features
        assert not graph.inductive

    def test_cora_planetoid_split_sizes(self):
        graph = load_dataset("cora", seed=0)
        assert graph.split.train.size == 140  # 20 per class x 7 classes
        assert graph.split.val.size == 500
        assert graph.split.test.size == 1000

    def test_citeseer_split_sizes(self):
        graph = load_dataset("citeseer", seed=0)
        assert graph.split.train.size == 120
        assert graph.split.test.size == 1000

    def test_splits_are_disjoint(self):
        graph = load_dataset("cora", seed=1)
        graph.split.validate_disjoint()

    def test_homophily_is_high(self):
        graph = load_dataset("cora", seed=0)
        assert edge_homophily(graph) > 0.6


class TestInductiveDatasets:
    @pytest.mark.parametrize("name", ["flickr", "reddit"])
    def test_inductive_flag(self, name):
        graph = load_dataset(name, seed=0)
        assert graph.inductive

    def test_training_view_smaller_than_graph(self):
        graph = load_dataset("flickr", seed=0)
        view = graph.training_view()
        assert view.num_nodes == graph.split.train.size
        assert view.num_nodes < graph.num_nodes

    def test_reddit_has_more_classes_than_flickr(self):
        flickr = load_dataset("flickr", seed=0)
        reddit = load_dataset("reddit", seed=0)
        assert reddit.num_classes > flickr.num_classes
        assert reddit.num_nodes > flickr.num_nodes


class TestDeterminism:
    @pytest.mark.parametrize("name", ["cora", "cora-memo-cleared"])
    def test_same_seed_same_graph(self, name):
        # load_dataset memoises per (name, seed); clearing the memo between
        # loads forces a genuine regeneration so this still tests generator
        # determinism, not dict identity.
        dataset = name.split("-")[0]
        a = load_dataset(dataset, seed=3)
        if name.endswith("memo-cleared"):
            clear_dataset_cache(dataset)
        else:
            assert load_dataset(dataset, seed=3) is a  # memo hit
        b = load_dataset(dataset, seed=3)
        assert (a.adjacency != b.adjacency).nnz == 0
        np.testing.assert_allclose(a.features, b.features)
        np.testing.assert_array_equal(a.split.train, b.split.train)

    def test_different_seed_different_graph(self):
        a = load_dataset("cora", seed=0)
        b = load_dataset("cora", seed=1)
        assert (a.adjacency != b.adjacency).nnz > 0

    def test_different_datasets_differ_at_same_seed(self):
        cora = load_dataset("cora", seed=0)
        citeseer = load_dataset("citeseer", seed=0)
        assert cora.num_nodes != citeseer.num_nodes


class TestStatistics:
    def test_dataset_statistics_keys(self):
        graph = load_dataset("cora", seed=0)
        stats = dataset_statistics(graph)
        for key in ("nodes", "edges", "classes", "features", "avg_degree", "homophily"):
            assert key in stats

    def test_statistics_table_covers_requested(self):
        rows = statistics_table(["cora", "citeseer"], seed=0)
        assert len(rows) == 2
        assert rows[0]["name"] == "cora"

    def test_homophily_of_empty_graph_is_zero(self, tiny_graph):
        import scipy.sparse as sp

        empty = tiny_graph.with_(adjacency=sp.csr_matrix((6, 6)))
        assert edge_homophily(empty) == 0.0


class TestDatasetSpec:
    def test_spec_is_frozen(self):
        spec = get_spec("cora")
        with pytest.raises(Exception):
            spec.name = "other"  # type: ignore[misc]

    def test_spec_records_reference_size(self):
        assert get_spec("reddit").reference_nodes == 232965
        assert get_spec("flickr").reference_nodes == 89250

    def test_reddit_generated_at_reference_scale(self):
        # Drift check: the reddit stand-in is generated at the full published
        # Reddit node count — the two columns of the `repro datasets` listing
        # must agree.  A spec-level check (no 233k generation in tier-1).
        spec = get_spec("reddit")
        assert spec.num_nodes == spec.reference_nodes == 232965

    def test_flickr_exceeds_reference_scale(self):
        # Flickr rounds its 89,250-node reference up to a clean 100k; the
        # stand-in must never silently shrink below the published size.
        spec = get_spec("flickr")
        assert spec.num_nodes >= spec.reference_nodes
