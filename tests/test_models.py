"""Unit tests for the GNN architectures and the shared trainer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.models import (
    APPNP,
    GAT,
    GCN,
    MLP,
    SGC,
    ChebyNet,
    GraphSAGE,
    Trainer,
    TrainingConfig,
    available_architectures,
    make_model,
)
from repro.models.transformer import MultiHeadSelfAttention, TransformerEncoderLayer
from repro.autograd import Tensor
from repro.utils.seed import new_rng

ARCHITECTURES = [GCN, SGC, GraphSAGE, MLP, APPNP, ChebyNet, GAT]


class TestForwardShapes:
    @pytest.mark.parametrize("architecture", ARCHITECTURES)
    def test_sparse_adjacency_forward(self, architecture, small_graph, rng):
        model = architecture(small_graph.num_features, small_graph.num_classes, rng=rng, hidden=16)
        logits = model.forward(small_graph.adjacency, small_graph.features)
        assert logits.shape == (small_graph.num_nodes, small_graph.num_classes)

    @pytest.mark.parametrize("architecture", ARCHITECTURES)
    def test_dense_adjacency_forward(self, architecture, rng):
        n, d, c = 10, 8, 3
        adjacency = np.eye(n)
        features = rng.normal(size=(n, d))
        model = architecture(d, c, rng=rng, hidden=16)
        logits = model.forward(adjacency, features)
        assert logits.shape == (n, c)

    @pytest.mark.parametrize("architecture", ARCHITECTURES)
    def test_predict_returns_valid_labels(self, architecture, small_graph, rng):
        model = architecture(small_graph.num_features, small_graph.num_classes, rng=rng, hidden=16)
        predictions = model.predict(small_graph.adjacency, small_graph.features)
        assert predictions.shape == (small_graph.num_nodes,)
        assert predictions.min() >= 0
        assert predictions.max() < small_graph.num_classes

    def test_predict_restores_training_mode(self, small_graph, rng):
        model = GCN(small_graph.num_features, small_graph.num_classes, rng=rng)
        model.train()
        model.predict(small_graph.adjacency, small_graph.features)
        assert model.training


class TestArchitectureSpecifics:
    def test_gcn_invalid_layers(self, rng):
        with pytest.raises(ConfigurationError):
            GCN(4, 2, rng=rng, num_layers=0)

    def test_gcn_layer_count_configurable(self, small_graph, rng):
        for layers in (1, 2, 3):
            model = GCN(small_graph.num_features, small_graph.num_classes, rng=rng, num_layers=layers)
            logits = model.forward(small_graph.adjacency, small_graph.features)
            assert logits.shape[1] == small_graph.num_classes

    def test_mlp_ignores_structure(self, small_graph, rng):
        model = MLP(small_graph.num_features, small_graph.num_classes, rng=new_rng(0), hidden=16)
        model.eval()
        with_graph = model.forward(small_graph.adjacency, small_graph.features).data
        without_graph = model.forward(np.eye(small_graph.num_nodes), small_graph.features).data
        np.testing.assert_allclose(with_graph, without_graph)

    def test_sgc_propagated_features_shape(self, small_graph, rng):
        model = SGC(small_graph.num_features, small_graph.num_classes, rng=rng)
        propagated = model.propagated_features(small_graph.adjacency, small_graph.features)
        assert propagated.shape == (small_graph.num_nodes, small_graph.num_features)

    def test_sgc_is_linear_in_weight(self, small_graph, rng):
        model = SGC(small_graph.num_features, small_graph.num_classes, rng=rng)
        model.eval()
        logits = model.forward(small_graph.adjacency, small_graph.features).data
        model.linear.weight.data *= 2.0
        model.linear.bias.data *= 2.0
        doubled = model.forward(small_graph.adjacency, small_graph.features).data
        np.testing.assert_allclose(doubled, 2.0 * logits, rtol=1e-9)

    def test_appnp_invalid_teleport(self, rng):
        with pytest.raises(ConfigurationError):
            APPNP(4, 2, rng=rng, teleport=0.0)

    def test_cheby_invalid_order(self, rng):
        with pytest.raises(ConfigurationError):
            ChebyNet(4, 2, rng=rng, cheb_order=0)

    def test_gat_invalid_config(self, rng):
        with pytest.raises(ConfigurationError):
            GAT(4, 2, rng=rng, num_layers=0)
        with pytest.raises(ConfigurationError):
            GAT(4, 2, rng=rng, heads=0)

    def test_gat_heads_configurable(self, small_graph, rng):
        for heads in (1, 2, 4):
            model = GAT(
                small_graph.num_features, small_graph.num_classes, rng=rng, hidden=8, heads=heads
            )
            logits = model.forward(small_graph.adjacency, small_graph.features)
            assert logits.shape == (small_graph.num_nodes, small_graph.num_classes)

    def test_gat_deterministic_given_seed(self, small_graph):
        def run():
            model = GAT(small_graph.num_features, small_graph.num_classes, rng=new_rng(3), hidden=8)
            model.eval()
            return model.forward(small_graph.adjacency, small_graph.features).data

        np.testing.assert_array_equal(run(), run())

    def test_gat_attention_weights_sum_to_one(self, small_graph, rng):
        """Segment softmax normalises incoming-edge attention per destination."""
        from repro.models.gat import _edge_list, _segment_softmax
        import scipy.sparse as sp

        dst, src, weight = _edge_list(small_graph.adjacency)
        incidence = sp.csr_matrix(
            (np.ones(dst.size), (dst, np.arange(dst.size))),
            shape=(small_graph.num_nodes, dst.size),
        )
        scores = Tensor(rng.normal(size=(dst.size, 1)))
        attention = _segment_softmax(scores, weight, dst, incidence)
        sums = np.zeros(small_graph.num_nodes)
        np.add.at(sums, dst, attention.data[:, 0])
        np.testing.assert_allclose(sums, np.ones(small_graph.num_nodes), rtol=1e-9)

    def test_gat_gradients_flow(self, small_graph, rng):
        model = GAT(small_graph.num_features, small_graph.num_classes, rng=rng, hidden=8)
        model.eval()
        logits = model.forward(small_graph.adjacency, small_graph.features)
        logits.sum().backward()
        assert all(p.grad is not None for p in model.parameters())

    def test_sage_uses_row_normalised_neighbours(self, rng):
        operator = GraphSAGE._mean_operator(np.array([[0.0, 1.0, 1.0], [1.0, 0.0, 0.0], [1.0, 0.0, 0.0]]))
        np.testing.assert_allclose(operator.sum(axis=1), np.ones(3))


class TestMakeModel:
    def test_registry_contains_table3_architectures(self):
        names = available_architectures()
        for expected in ("gcn", "sgc", "sage", "mlp", "appnp", "cheby", "gat"):
            assert expected in names

    def test_make_model_unknown_raises(self, rng):
        with pytest.raises(ConfigurationError):
            make_model("no-such-model", 4, 2, rng)

    @pytest.mark.parametrize("name", ["gcn", "sgc", "sage", "mlp", "appnp", "cheby", "gat"])
    def test_make_model_instantiates(self, name, rng):
        model = make_model(name, 6, 3, rng, hidden=8)
        logits = model.forward(np.eye(4), rng.normal(size=(4, 6)))
        assert logits.shape == (4, 3)


class TestTransformer:
    def test_attention_shape(self, rng):
        attention = MultiHeadSelfAttention(16, 4, rng)
        out = attention(Tensor(rng.normal(size=(5, 16))))
        assert out.shape == (5, 16)

    def test_attention_dim_divisibility(self, rng):
        with pytest.raises(ConfigurationError):
            MultiHeadSelfAttention(10, 3, rng)

    def test_encoder_layer_shape(self, rng):
        layer = TransformerEncoderLayer(16, 8, rng)
        out = layer(Tensor(rng.normal(size=(6, 16))))
        assert out.shape == (6, 16)

    def test_encoder_gradients_flow(self, rng):
        layer = TransformerEncoderLayer(8, 2, rng)
        out = layer(Tensor(rng.normal(size=(4, 8))))
        out.sum().backward()
        assert all(p.grad is not None for p in layer.parameters())


class TestTrainer:
    def test_training_improves_accuracy(self, small_graph, rng):
        model = GCN(small_graph.num_features, small_graph.num_classes, rng=rng, hidden=16)
        trainer = Trainer(model, TrainingConfig(epochs=60, patience=60))
        before = trainer.evaluate(
            small_graph.adjacency, small_graph.features, small_graph.labels, small_graph.split.test
        )
        trainer.fit(
            small_graph.adjacency,
            small_graph.features,
            small_graph.labels,
            small_graph.split.train,
            small_graph.split.val,
        )
        after = trainer.evaluate(
            small_graph.adjacency, small_graph.features, small_graph.labels, small_graph.split.test
        )
        assert after > before
        assert after > 0.6

    def test_early_stopping_stops_before_budget(self, small_graph, rng):
        model = GCN(small_graph.num_features, small_graph.num_classes, rng=rng, hidden=16)
        trainer = Trainer(model, TrainingConfig(epochs=500, patience=5))
        result = trainer.fit(
            small_graph.adjacency,
            small_graph.features,
            small_graph.labels,
            small_graph.split.train,
            small_graph.split.val,
        )
        assert len(result.history) < 500

    def test_no_validation_runs_full_budget(self, small_graph, rng):
        model = MLP(small_graph.num_features, small_graph.num_classes, rng=rng, hidden=8)
        trainer = Trainer(model, TrainingConfig(epochs=15, patience=5))
        result = trainer.fit(
            small_graph.adjacency,
            small_graph.features,
            small_graph.labels,
            small_graph.split.train,
        )
        assert len(result.history) == 15
        assert np.isnan(result.best_val_accuracy)

    def test_evaluate_empty_index_is_nan(self, small_graph, rng):
        model = MLP(small_graph.num_features, small_graph.num_classes, rng=rng)
        trainer = Trainer(model)
        assert np.isnan(
            trainer.evaluate(
                small_graph.adjacency, small_graph.features, small_graph.labels, np.array([], dtype=int)
            )
        )

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigurationError):
            TrainingConfig(epochs=0)
        with pytest.raises(ConfigurationError):
            TrainingConfig(lr=-1.0)
        with pytest.raises(ConfigurationError):
            TrainingConfig(patience=0)

    def test_cross_graph_validation(self, small_graph, rng):
        """Train on a condensed-style graph while validating on the original."""
        model = MLP(small_graph.num_features, small_graph.num_classes, rng=rng, hidden=8)
        trainer = Trainer(model, TrainingConfig(epochs=20, patience=20))
        core = small_graph.split.train
        result = trainer.fit(
            np.eye(core.size),
            small_graph.features[core],
            small_graph.labels[core],
            np.arange(core.size),
            val_index=small_graph.split.val,
            val_adjacency=small_graph.adjacency,
            val_features=small_graph.features,
            val_labels=small_graph.labels,
        )
        assert result.best_val_accuracy > 0.3
