"""Legacy setup shim.

The execution environment ships setuptools 65 without the ``wheel`` package,
so PEP 660 editable installs fail.  This shim lets ``pip install -e .
--no-use-pep517`` fall back to the classic ``setup.py develop`` path.
"""

from setuptools import setup

setup()
